//! The metrics registry: named counters, gauges, and log-bucketed
//! latency histograms over sim virtual time.
//!
//! All aggregation is pure integer arithmetic and all maps are
//! `BTreeMap`s, so a snapshot serializes to byte-identical JSON for
//! the same sequence of recordings — regardless of platform or hash
//! seeds.

use std::collections::BTreeMap;

use crate::json;

/// Number of log2 buckets: bucket 0 holds the value 0, bucket `i`
/// (1 ≤ i ≤ 64) holds values in `[2^(i-1), 2^i - 1]`.
const BUCKETS: usize = 65;

/// A log-bucketed histogram of `u64` samples (typically sim-time
/// microseconds or hop counts).
///
/// Quantiles are reported as the upper bound of the bucket containing
/// the requested rank, capped at the true observed maximum — an
/// integer-only estimate that is deterministic and at most 2× off.
#[derive(Clone)]
pub struct Histogram {
    buckets: [u64; BUCKETS],
    count: u64,
    sum: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

fn bucket_index(v: u64) -> usize {
    (64 - v.leading_zeros()) as usize
}

fn bucket_upper_bound(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 64 {
        u64::MAX
    } else {
        (1u64 << i) - 1
    }
}

impl Histogram {
    /// Records one sample.
    pub fn observe(&mut self, v: u64) {
        self.buckets[bucket_index(v)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.max = self.max.max(v);
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Largest sample recorded, or 0 if empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The value at or above `pct` percent of samples (1 ≤ pct ≤ 100),
    /// as the containing bucket's upper bound capped at `max`. Returns
    /// 0 for an empty histogram.
    pub fn quantile(&self, pct: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        // rank = ceil(count * pct / 100), clamped to [1, count].
        let rank = ((self.count * pct).div_ceil(100)).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &b) in self.buckets.iter().enumerate() {
            seen += b;
            if seen >= rank {
                return bucket_upper_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// Folds another histogram into this one (bucket-wise addition).
    /// Merging is commutative and associative, so per-shard histograms
    /// combine into the same totals regardless of shard count or merge
    /// order — the property the sharded engine's determinism rests on.
    pub fn merge_from(&mut self, other: &Histogram) {
        for (b, ob) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += ob;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }

    /// Serializes the summary as a JSON object.
    pub fn to_json(&self) -> String {
        json::object(&[
            ("count", self.count.to_string()),
            ("sum", self.sum.to_string()),
            ("max", self.max.to_string()),
            ("p50", self.quantile(50).to_string()),
            ("p95", self.quantile(95).to_string()),
            ("p99", self.quantile(99).to_string()),
        ])
    }
}

/// Named counters, gauges, and histograms.
///
/// Metric names are dotted paths (`"net.delivered"`,
/// `"store.cache.hit.gds"`); the registry stores them in sorted order
/// so emission is deterministic.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    gauges: BTreeMap<String, i64>,
    histograms: BTreeMap<String, Histogram>,
    /// Windowed time series: name → sim-time bucket index → count. The
    /// *caller* computes the bucket (`now / window_width`), so the
    /// registry needs no notion of the width and per-shard fragments
    /// merge by plain addition.
    windows: BTreeMap<String, BTreeMap<u64, u64>>,
    /// Per-node windowed series: name → (bucket, node) → count. Used for
    /// load-spread charts (max/mean per window across nodes).
    node_windows: BTreeMap<String, BTreeMap<(u64, u32), u64>>,
}

impl MetricsRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `delta` to the named counter (creating it at 0).
    pub fn counter(&mut self, name: &str, delta: u64) {
        *self.counters.entry_ref_or_insert(name) += delta;
    }

    /// Sets the named gauge to `value`.
    pub fn gauge(&mut self, name: &str, value: i64) {
        match self.gauges.get_mut(name) {
            Some(g) => *g = value,
            None => {
                self.gauges.insert(name.to_string(), value);
            }
        }
    }

    /// Records one sample into the named histogram.
    pub fn observe(&mut self, name: &str, value: u64) {
        match self.histograms.get_mut(name) {
            Some(h) => h.observe(value),
            None => {
                let mut h = Histogram::default();
                h.observe(value);
                self.histograms.insert(name.to_string(), h);
            }
        }
    }

    /// Adds `delta` to the named windowed series at `bucket` (a
    /// caller-computed sim-time bucket index, `now / window_width`).
    pub fn window_add(&mut self, name: &str, bucket: u64, delta: u64) {
        let series = match self.windows.get_mut(name) {
            Some(s) => s,
            None => self.windows.entry(name.to_string()).or_default(),
        };
        *series.entry(bucket).or_insert(0) += delta;
    }

    /// Adds `delta` to the named per-node windowed series at
    /// `(bucket, node)`.
    pub fn window_node_add(&mut self, name: &str, bucket: u64, node: u32, delta: u64) {
        let series = match self.node_windows.get_mut(name) {
            Some(s) => s,
            None => self.node_windows.entry(name.to_string()).or_default(),
        };
        *series.entry((bucket, node)).or_insert(0) += delta;
    }

    /// The named windowed series (bucket → count), if any was recorded.
    pub fn window(&self, name: &str) -> Option<&BTreeMap<u64, u64>> {
        self.windows.get(name)
    }

    /// The named per-node windowed series ((bucket, node) → count), if
    /// any was recorded.
    pub fn node_window(&self, name: &str) -> Option<&BTreeMap<(u64, u32), u64>> {
        self.node_windows.get(name)
    }

    /// All windowed series.
    pub fn windows(&self) -> &BTreeMap<String, BTreeMap<u64, u64>> {
        &self.windows
    }

    /// All per-node windowed series.
    pub fn node_windows(&self) -> &BTreeMap<String, BTreeMap<(u64, u32), u64>> {
        &self.node_windows
    }

    /// Current value of a counter (0 if never touched).
    pub fn counter_value(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Current value of a gauge, if ever set.
    pub fn gauge_value(&self, name: &str) -> Option<i64> {
        self.gauges.get(name).copied()
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Folds another registry into this one: counters add, histograms
    /// merge bucket-wise, gauges take the other registry's value (a
    /// gauge is a point sample — shard registries only carry gauges the
    /// harness set, which it does on the merged side anyway).
    pub fn merge_from(&mut self, other: &MetricsRegistry) {
        for (name, delta) in &other.counters {
            *self.counters.entry_ref_or_insert(name) += delta;
        }
        for (name, value) in &other.gauges {
            self.gauge(name, *value);
        }
        for (name, hist) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(h) => h.merge_from(hist),
                None => {
                    self.histograms.insert(name.clone(), hist.clone());
                }
            }
        }
        for (name, series) in &other.windows {
            let mine = self.windows.entry(name.clone()).or_default();
            for (bucket, delta) in series {
                *mine.entry(*bucket).or_insert(0) += delta;
            }
        }
        for (name, series) in &other.node_windows {
            let mine = self.node_windows.entry(name.clone()).or_default();
            for (key, delta) in series {
                *mine.entry(*key).or_insert(0) += delta;
            }
        }
    }

    /// Serializes a point-in-time snapshot (all metrics plus the sim
    /// timestamp) as a JSON object.
    pub fn to_json(&self, at_us: u64) -> String {
        let counters: Vec<(&str, String)> = self
            .counters
            .iter()
            .map(|(k, v)| (k.as_str(), v.to_string()))
            .collect();
        let gauges: Vec<(&str, String)> = self
            .gauges
            .iter()
            .map(|(k, v)| (k.as_str(), v.to_string()))
            .collect();
        let histograms: Vec<(&str, String)> = self
            .histograms
            .iter()
            .map(|(k, h)| (k.as_str(), h.to_json()))
            .collect();
        let mut fields: Vec<(&str, String)> = vec![
            ("at_us", at_us.to_string()),
            ("counters", json::object(&counters)),
            ("gauges", json::object(&gauges)),
            ("histograms", json::object(&histograms)),
        ];
        // Windowed series are emitted only when present, so snapshots
        // from runs with the windowing knob off stay byte-identical to
        // what they were before the knob existed.
        if !self.windows.is_empty() {
            let series: Vec<(&str, String)> = self
                .windows
                .iter()
                .map(|(name, buckets)| {
                    let entries: Vec<(String, String)> = buckets
                        .iter()
                        .map(|(b, v)| (b.to_string(), v.to_string()))
                        .collect();
                    let refs: Vec<(&str, String)> = entries
                        .iter()
                        .map(|(b, v)| (b.as_str(), v.clone()))
                        .collect();
                    (name.as_str(), json::object(&refs))
                })
                .collect();
            fields.push(("windows", json::object(&series)));
        }
        if !self.node_windows.is_empty() {
            // Per-node series are summarized per bucket (total, node
            // count, max) — enough for load-spread charts without a
            // per-node blowup in the snapshot.
            let series: Vec<(&str, String)> = self
                .node_windows
                .iter()
                .map(|(name, cells)| {
                    let mut agg: BTreeMap<u64, (u64, u64, u64)> = BTreeMap::new();
                    for (&(bucket, _node), &v) in cells {
                        let e = agg.entry(bucket).or_insert((0, 0, 0));
                        e.0 += v;
                        e.1 += 1;
                        e.2 = e.2.max(v);
                    }
                    let entries: Vec<(String, String)> = agg
                        .iter()
                        .map(|(b, (total, nodes, max))| {
                            (
                                b.to_string(),
                                json::object(&[
                                    ("total", total.to_string()),
                                    ("nodes", nodes.to_string()),
                                    ("max", max.to_string()),
                                ]),
                            )
                        })
                        .collect();
                    let refs: Vec<(&str, String)> = entries
                        .iter()
                        .map(|(b, v)| (b.as_str(), v.clone()))
                        .collect();
                    (name.as_str(), json::object(&refs))
                })
                .collect();
            fields.push(("node_windows", json::object(&series)));
        }
        json::object(&fields)
    }
}

// BTreeMap<String, u64> lacks an entry API over &str without
// allocating; this tiny extension keeps the hot path allocation-free
// for existing keys.
trait EntryRefExt {
    fn entry_ref_or_insert(&mut self, name: &str) -> &mut u64;
}

impl EntryRefExt for BTreeMap<String, u64> {
    fn entry_ref_or_insert(&mut self, name: &str) -> &mut u64 {
        if !self.contains_key(name) {
            self.insert(name.to_string(), 0);
        }
        self.get_mut(name).expect("just inserted")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1023), 10);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), 64);
    }

    #[test]
    fn histogram_quantiles_are_bucket_bounds_capped_at_max() {
        let mut h = Histogram::default();
        for v in [1u64, 2, 3, 100, 1000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), 1000);
        // rank(50) = ceil(5*50/100) = 3 → third sample: bucket of 3 → ub 3.
        assert_eq!(h.quantile(50), 3);
        // rank(95) = ceil(475/100) = 5 → bucket of 1000 = [512,1023] → capped at max.
        assert_eq!(h.quantile(95), 1000);
        assert_eq!(h.quantile(99), 1000);
    }

    #[test]
    fn histogram_empty_and_zero() {
        let mut h = Histogram::default();
        assert_eq!(h.quantile(50), 0);
        h.observe(0);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(99), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn registry_snapshot_is_sorted_and_integer_only() {
        let mut r = MetricsRegistry::new();
        r.counter("b.second", 2);
        r.counter("a.first", 1);
        r.gauge("z.gauge", -5);
        r.observe("lat_us", 7);
        let json = r.to_json(1234);
        assert_eq!(
            json,
            "{\"at_us\":1234,\
             \"counters\":{\"a.first\":1,\"b.second\":2},\
             \"gauges\":{\"z.gauge\":-5},\
             \"histograms\":{\"lat_us\":{\"count\":1,\"sum\":7,\"max\":7,\"p50\":7,\"p95\":7,\"p99\":7}}}"
        );
    }

    #[test]
    fn registry_merge_sums_counters_and_histograms() {
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.counter("net.sent", 5);
        b.counter("net.sent", 7);
        b.counter("net.lost", 1);
        a.observe("lat", 3);
        b.observe("lat", 100);
        b.observe("other", 1);
        a.gauge("g", 1);
        b.gauge("g", 2);
        a.merge_from(&b);
        assert_eq!(a.counter_value("net.sent"), 12);
        assert_eq!(a.counter_value("net.lost"), 1);
        let h = a.histogram("lat").unwrap();
        assert_eq!(h.count(), 2);
        assert_eq!(h.sum(), 103);
        assert_eq!(h.max(), 100);
        assert_eq!(a.histogram("other").unwrap().count(), 1);
        assert_eq!(a.gauge_value("g"), Some(2));
    }

    #[test]
    fn histogram_merge_is_order_independent() {
        let samples = [0u64, 1, 7, 1024, 999_999];
        let mut whole = Histogram::default();
        for &s in &samples {
            whole.observe(s);
        }
        // Split across three shards, merged in reverse order.
        let mut parts = [
            Histogram::default(),
            Histogram::default(),
            Histogram::default(),
        ];
        for (i, &s) in samples.iter().enumerate() {
            parts[i % 3].observe(s);
        }
        let mut merged = Histogram::default();
        for p in parts.iter().rev() {
            merged.merge_from(p);
        }
        assert_eq!(merged.to_json(), whole.to_json());
    }

    #[test]
    fn windows_absent_from_snapshot_when_unused() {
        let mut r = MetricsRegistry::new();
        r.counter("c", 1);
        assert!(!r.to_json(0).contains("windows"));
    }

    #[test]
    fn window_snapshot_shape() {
        let mut r = MetricsRegistry::new();
        r.window_add("win.lookup", 3, 2);
        r.window_add("win.lookup", 1, 1);
        r.window_node_add("win.served", 1, 9, 4);
        r.window_node_add("win.served", 1, 2, 1);
        r.window_node_add("win.served", 2, 9, 7);
        let json = r.to_json(0);
        assert_eq!(
            json,
            "{\"at_us\":0,\"counters\":{},\"gauges\":{},\"histograms\":{},\
             \"windows\":{\"win.lookup\":{\"1\":1,\"3\":2}},\
             \"node_windows\":{\"win.served\":{\
             \"1\":{\"total\":5,\"nodes\":2,\"max\":4},\
             \"2\":{\"total\":7,\"nodes\":1,\"max\":7}}}}"
        );
    }

    #[test]
    fn window_merge_is_plain_addition() {
        let mut whole = MetricsRegistry::new();
        whole.window_add("w", 0, 3);
        whole.window_add("w", 1, 5);
        whole.window_node_add("nw", 0, 7, 2);
        whole.window_node_add("nw", 0, 8, 1);

        // The same recordings split across two fragments, merged in
        // reverse order, must land on the identical registry.
        let mut a = MetricsRegistry::new();
        let mut b = MetricsRegistry::new();
        a.window_add("w", 0, 1);
        b.window_add("w", 0, 2);
        b.window_add("w", 1, 5);
        b.window_node_add("nw", 0, 7, 2);
        a.window_node_add("nw", 0, 8, 1);
        let mut merged = MetricsRegistry::new();
        merged.merge_from(&b);
        merged.merge_from(&a);
        assert_eq!(merged.to_json(0), whole.to_json(0));
        assert_eq!(merged.window("w").unwrap().get(&1), Some(&5));
        assert_eq!(merged.node_window("nw").unwrap().get(&(0, 7)), Some(&2));
    }

    #[test]
    fn counter_accumulates_and_reads_back() {
        let mut r = MetricsRegistry::new();
        r.counter("x", 1);
        r.counter("x", 41);
        assert_eq!(r.counter_value("x"), 42);
        assert_eq!(r.counter_value("missing"), 0);
        r.gauge("g", 7);
        r.gauge("g", 9);
        assert_eq!(r.gauge_value("g"), Some(9));
    }
}
