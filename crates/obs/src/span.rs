//! Operation spans: one span follows a single insert, lookup,
//! reclaim, or maintenance operation across nodes and hops, recording
//! a structured timeline on the sim clock.
//!
//! A span is identified by [`SpanId`] — the originating node's network
//! address plus the operation's request sequence number, which is how
//! `past-core` already correlates replies (`ReqId`), so the same key
//! works from any node the operation touches without shared state.

use crate::json;

/// Globally unique span identity: originating node address + per-node
/// operation sequence number.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SpanId {
    /// Network address of the node that started the operation.
    pub node: u32,
    /// The operation's sequence number at that node. Maintenance
    /// spans set the top bit to avoid colliding with client requests.
    pub seq: u64,
}

/// Bit set in [`SpanId::seq`] for maintenance-protocol spans, which
/// draw from a different sequence space than client requests.
pub const MAINT_SPAN_BIT: u64 = 1 << 63;

/// One timeline entry inside a span: where and when something
/// happened, plus one integer of detail (hop count, target address,
/// attempt number — whatever the label implies).
#[derive(Clone, Copy, Debug)]
pub struct SpanEvent {
    /// Sim time in microseconds.
    pub at_us: u64,
    /// Network address of the node recording the event.
    pub node: u32,
    /// Static label, e.g. `"hop"`, `"divert_request"`, `"re_salt"`.
    pub label: &'static str,
    /// Label-specific integer payload.
    pub value: i64,
}

/// A completed (or still-open) operation trace.
#[derive(Clone, Debug)]
pub struct OpSpan {
    /// Identity (origin node + sequence).
    pub id: SpanId,
    /// Operation kind: `"insert"`, `"lookup"`, `"reclaim"`, `"maint"`.
    pub kind: &'static str,
    /// Sim time the operation started.
    pub started_at: u64,
    /// Sim time the operation ended (0 while open).
    pub ended_at: u64,
    /// Terminal outcome label (`"ok"`, `"hit_cached"`, `"timeout"`,
    /// ...; empty while open).
    pub outcome: &'static str,
    /// Ordered timeline of events.
    pub events: Vec<SpanEvent>,
}

impl OpSpan {
    /// Opens a new span.
    pub fn start(id: SpanId, kind: &'static str, at_us: u64) -> Self {
        OpSpan {
            id,
            kind,
            started_at: at_us,
            ended_at: 0,
            outcome: "",
            events: Vec::new(),
        }
    }

    /// Duration in sim microseconds (0 while open).
    pub fn duration_us(&self) -> u64 {
        self.ended_at.saturating_sub(self.started_at)
    }

    /// Serializes the span as a JSON object. The maintenance bit is
    /// stripped from the emitted `seq` (the kind already says it).
    pub fn to_json(&self) -> String {
        let events: Vec<String> = self
            .events
            .iter()
            .map(|e| {
                json::object(&[
                    ("at_us", e.at_us.to_string()),
                    ("node", e.node.to_string()),
                    ("label", format!("\"{}\"", json::escape(e.label))),
                    ("value", e.value.to_string()),
                ])
            })
            .collect();
        json::object(&[
            ("node", self.id.node.to_string()),
            ("seq", (self.id.seq & !MAINT_SPAN_BIT).to_string()),
            ("kind", format!("\"{}\"", json::escape(self.kind))),
            ("start_us", self.started_at.to_string()),
            ("end_us", self.ended_at.to_string()),
            ("outcome", format!("\"{}\"", json::escape(self.outcome))),
            ("events", json::array(&events)),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_json_shape() {
        let mut s = OpSpan::start(SpanId { node: 3, seq: 9 }, "lookup", 100);
        s.events.push(SpanEvent {
            at_us: 140,
            node: 5,
            label: "hop",
            value: 1,
        });
        s.ended_at = 220;
        s.outcome = "hit_primary";
        assert_eq!(
            s.to_json(),
            "{\"node\":3,\"seq\":9,\"kind\":\"lookup\",\"start_us\":100,\"end_us\":220,\
             \"outcome\":\"hit_primary\",\
             \"events\":[{\"at_us\":140,\"node\":5,\"label\":\"hop\",\"value\":1}]}"
        );
        assert_eq!(s.duration_us(), 120);
    }

    #[test]
    fn maint_bit_stripped_in_json() {
        let s = OpSpan::start(
            SpanId {
                node: 1,
                seq: MAINT_SPAN_BIT | 4,
            },
            "maint",
            0,
        );
        assert!(s.to_json().contains("\"seq\":4"));
    }
}
