//! Hand-rolled observability for the PAST simulation: a metrics
//! registry (counters, gauges, log-bucketed histograms), an operation
//! span tracer that follows one insert/lookup/maintenance operation
//! across hops, and hand-written JSON emission.
//!
//! Everything keys off the deterministic sim clock (`past-net`'s
//! virtual microseconds), never the wall clock, and every emitted
//! value is an integer — so the same seed produces byte-identical
//! JSON, which makes the metrics output itself a regression oracle.
//!
//! The crate deliberately has **zero dependencies**: instrumented
//! crates (`past-net`, `past-pastry`, `past-core`, `past-store`) call
//! the free functions in [`recorder`], which no-op on a single
//! thread-local boolean when no recorder is installed. The sim is
//! single-threaded and Rust tests run one-per-thread, so a
//! thread-local recorder isolates concurrent tests for free.
//!
//! Typical use from a harness:
//!
//! ```
//! use past_obs::{self as obs, Recorder};
//!
//! obs::install(Recorder::new());
//! obs::counter("demo.events", 1);
//! obs::observe("demo.latency_us", 1500);
//! let id = obs::SpanId { node: 7, seq: 1 };
//! obs::span_start(id, "lookup", 0);
//! obs::span_event(id, 40, 3, "hop", 1);
//! obs::span_end(id, 95, "hit_primary");
//! let mut rec = obs::uninstall().unwrap();
//! rec.take_snapshot(95);
//! let json = rec.report_json("demo", 42);
//! assert!(json.contains("\"demo.events\":1"));
//! ```

pub mod json;
pub mod mem;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use metrics::{Histogram, MetricsRegistry};
pub use recorder::{
    counter, gauge, install, is_enabled, observe, span_end, span_event, span_start, uninstall,
    window_add, window_node_add, with_recorder, Recorder,
};
pub use span::{OpSpan, SpanEvent, SpanId};
