//! Combined per-node Pastry state and the routing decision procedure.

use past_id::NodeId;
use past_net::SimTime;
use rand::rngs::StdRng;
use rand::Rng;

use crate::config::PastryConfig;
use crate::leaf_set::{LeafSet, NodeEntry};
use crate::neighborhood::NeighborhoodSet;
use crate::peer_score::PeerScoreTable;
use crate::routing_table::RoutingTable;

/// The outcome of a routing decision.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum NextHop {
    /// This node is the numerically closest live node it knows of; the
    /// message is delivered here.
    Local,
    /// Forward to the given node.
    Forward(NodeEntry),
}

/// Which routing structure resolved a hop (paper §2.1's three cases,
/// plus local delivery). Exposed for hop-level tracing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HopClass {
    /// Delivered locally (own key, leaf-set middle, or no better node).
    Local,
    /// Resolved by the leaf set (the key fell within its range).
    LeafSet,
    /// Resolved by the routing table's primary cell.
    Table,
    /// The rare case: no table entry, so a numerically closer known
    /// node with an equal-length prefix was used (or, under randomized
    /// routing, a non-primary admissible candidate).
    Rare,
}

impl HopClass {
    /// The metric counter name bumped when a hop of this class is
    /// taken (see `past-obs`).
    pub fn metric_name(self) -> &'static str {
        match self {
            HopClass::Local => "pastry.resolve.local",
            HopClass::LeafSet => "pastry.resolve.leaf_set",
            HopClass::Table => "pastry.resolve.table",
            HopClass::Rare => "pastry.resolve.rare",
        }
    }
}

/// What changed in the leaf set after learning about or losing a node.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum LeafChange {
    /// No leaf-set change.
    None,
    /// The node entered the leaf set.
    Added,
    /// The node left the leaf set.
    Removed,
}

/// The full Pastry state of one node: leaf set, routing table and
/// neighborhood set (cf. Figure 1 of the paper).
#[derive(Clone, Debug)]
pub struct PastryState {
    own: NodeEntry,
    b: u32,
    leaf: LeafSet,
    table: RoutingTable,
    neighborhood: NeighborhoodSet,
}

impl PastryState {
    /// Creates the state for a node.
    pub fn new(own: NodeEntry, cfg: &PastryConfig) -> Self {
        cfg.validate();
        PastryState {
            own,
            b: cfg.b,
            leaf: LeafSet::new(own.id, cfg.leaf_half()),
            table: RoutingTable::new(own.id, cfg.b),
            neighborhood: NeighborhoodSet::new(own.id, cfg.neighborhood_size),
        }
    }

    /// This node's identity.
    pub fn own(&self) -> NodeEntry {
        self.own
    }

    /// Read access to the leaf set.
    pub fn leaf_set(&self) -> &LeafSet {
        &self.leaf
    }

    /// Read access to the routing table.
    pub fn routing_table(&self) -> &RoutingTable {
        &self.table
    }

    /// Read access to the neighborhood set.
    pub fn neighborhood(&self) -> &NeighborhoodSet {
        &self.neighborhood
    }

    /// Records that a node was seen (piggybacked on every message and on
    /// explicit announcements). Updates all three structures; returns the
    /// leaf-set effect so the caller can trigger application callbacks.
    pub fn on_node_seen(&mut self, entry: NodeEntry, proximity: f64) -> LeafChange {
        if entry.id == self.own.id {
            return LeafChange::None;
        }
        let leaf_changed = self.leaf.insert(entry);
        self.table.consider(entry, proximity);
        self.neighborhood.consider(entry, proximity);
        if leaf_changed {
            LeafChange::Added
        } else {
            LeafChange::None
        }
    }

    /// Records that a node is presumed failed. Returns the leaf-set
    /// effect (PAST re-creates replicas when a leaf neighbor is lost).
    pub fn on_node_failed(&mut self, id: NodeId) -> LeafChange {
        let was_leaf = self.leaf.remove(id).is_some();
        self.table.remove(id);
        self.neighborhood.remove(id);
        if was_leaf {
            LeafChange::Removed
        } else {
            LeafChange::None
        }
    }

    /// Evicts routing-table candidates whose decayed reliability at
    /// `now` fell below `threshold_milli`, returning the evicted ids
    /// (ascending, deterministic). Only peers with recorded evidence
    /// are judged — an unknown peer's prior (500) is not a verdict —
    /// and current leaf-set members are exempt: the keep-alive failure
    /// detector owns their membership, and evicting them here would
    /// tear holes in the replica-candidate ring on soft evidence.
    pub fn demote_unreliable_candidates(
        &mut self,
        scores: &PeerScoreTable,
        now: SimTime,
        threshold_milli: u64,
    ) -> Vec<NodeId> {
        let mut victims: Vec<NodeId> = self
            .table
            .entries()
            .map(|c| c.entry.id)
            .filter(|id| !self.leaf.contains(*id))
            .filter(|id| scores.get(*id).is_some())
            .filter(|id| scores.reliability_milli(*id, now) < threshold_milli)
            .collect();
        victims.sort_unstable();
        victims.dedup();
        for id in &victims {
            self.table.remove(*id);
        }
        victims
    }

    /// All distinct nodes this node knows about.
    pub fn known_nodes(&self) -> Vec<NodeEntry> {
        let mut nodes: Vec<NodeEntry> = self.leaf.members().copied().collect();
        for cell in self.table.entries() {
            nodes.push(cell.entry);
        }
        for n in self.neighborhood.members() {
            nodes.push(n.entry);
        }
        nodes.sort_by_key(|e| e.id);
        nodes.dedup_by_key(|e| e.id);
        nodes
    }

    /// The `k` candidate replica holders for `key`, judged locally.
    pub fn replica_candidates(&self, key: NodeId, k: usize) -> Vec<NodeEntry> {
        self.leaf.replica_candidates(key, k, self.own.addr)
    }

    /// Whether this node believes it is among the `k` closest to `key`.
    pub fn is_among_k_closest(&self, key: NodeId, k: usize) -> bool {
        self.leaf.is_among_k_closest(key, k, self.own.addr)
    }

    /// The Pastry routing decision for `key` (paper §2.1).
    ///
    /// 1. If `key` falls within the leaf-set range, the message goes
    ///    directly to the numerically closest member (possibly this node).
    /// 2. Otherwise the routing table supplies a node sharing a prefix at
    ///    least one digit longer than this node's.
    /// 3. If that cell is empty, fall back to any known node whose prefix
    ///    match is at least as long and which is numerically closer to the
    ///    key ("the rare case").
    ///
    /// With `randomized` routing enabled (and an RNG supplied), the choice
    /// among admissible candidates is randomized with a heavy bias toward
    /// the best candidate, which defends against malicious nodes sitting
    /// on a deterministic route.
    pub fn next_hop(
        &self,
        key: NodeId,
        randomized: bool,
        best_hop_bias: f64,
        rng: Option<&mut StdRng>,
    ) -> NextHop {
        self.next_hop_explained(key, randomized, best_hop_bias, rng).0
    }

    /// [`next_hop`](Self::next_hop), plus which routing structure
    /// resolved the decision (for hop-level tracing).
    pub fn next_hop_explained(
        &self,
        key: NodeId,
        randomized: bool,
        best_hop_bias: f64,
        rng: Option<&mut StdRng>,
    ) -> (NextHop, HopClass) {
        if key == self.own.id {
            return (NextHop::Local, HopClass::Local);
        }
        // Step 1: leaf set.
        if self.leaf.covers(key) {
            let best_member = self.leaf.closest(key);
            if self.leaf.is_empty() || self.own.id.closer_to(key, best_member.id) {
                return (NextHop::Local, HopClass::Local);
            }
            return (NextHop::Forward(best_member), HopClass::LeafSet);
        }
        // Step 2 & 3: prefix routing with fallback, optionally randomized.
        let shared = self.own.id.shared_prefix_digits(key, self.b);
        let primary = self
            .table
            .cell_for(key)
            .and_then(|c| c.as_ref())
            .map(|c| c.entry);
        if !randomized {
            if let Some(entry) = primary {
                return (NextHop::Forward(entry), HopClass::Table);
            }
            return match self.rare_case_candidate(key, shared) {
                Some(entry) => (NextHop::Forward(entry), HopClass::Rare),
                None => (NextHop::Local, HopClass::Local),
            };
        }
        // Randomized: gather all admissible candidates. Admissibility
        // (prefix at least as long, numerically closer than this node)
        // guarantees progress and thus loop freedom.
        let mut candidates: Vec<NodeEntry> = Vec::new();
        if let Some(p) = primary {
            candidates.push(p);
        }
        for node in self.known_nodes() {
            if Some(node.id) == primary.map(|p| p.id) {
                continue;
            }
            if node.id.shared_prefix_digits(key, self.b) >= shared
                && node.id.closer_to(key, self.own.id)
            {
                candidates.push(node);
            }
        }
        // The hop class reflects whether the routing table's primary
        // cell ends up chosen (Table) or an admissible alternative
        // does (Rare), mirroring the deterministic classification.
        if candidates.is_empty() {
            return (NextHop::Local, HopClass::Local);
        }
        let class_of = |e: NodeEntry| {
            if primary.map(|p| p.id) == Some(e.id) {
                HopClass::Table
            } else {
                HopClass::Rare
            }
        };
        if candidates.len() == 1 {
            return (NextHop::Forward(candidates[0]), class_of(candidates[0]));
        }
        if let Some(rng) = rng {
            if rng.gen::<f64>() >= best_hop_bias {
                let idx = 1 + rng.gen_range(0..candidates.len() - 1);
                return (NextHop::Forward(candidates[idx]), class_of(candidates[idx]));
            }
        }
        (NextHop::Forward(candidates[0]), class_of(candidates[0]))
    }

    /// Step 3 of routing: among all known nodes, one whose prefix match
    /// with `key` is at least `shared` digits and which is numerically
    /// closer to `key` than this node; the numerically closest such node
    /// is chosen. Iterates the three structures directly (this path is
    /// hot at the final hops of every route, so no allocation).
    fn rare_case_candidate(&self, key: NodeId, shared: u32) -> Option<NodeEntry> {
        let mut best: Option<NodeEntry> = None;
        let mut consider = |node: NodeEntry| {
            if node.id.shared_prefix_digits(key, self.b) >= shared
                && node.id.closer_to(key, self.own.id)
                && best.is_none_or(|b| node.id.closer_to(key, b.id))
            {
                best = Some(node);
            }
        };
        for e in self.leaf.members() {
            consider(*e);
        }
        for c in self.table.entries() {
            consider(c.entry);
        }
        for n in self.neighborhood.members() {
            consider(n.entry);
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_net::Addr;
    use rand::SeedableRng;

    fn cfg() -> PastryConfig {
        PastryConfig {
            leaf_set_size: 4,
            neighborhood_size: 4,
            ..Default::default()
        }
    }

    fn entry(v: u128) -> NodeEntry {
        NodeEntry::new(NodeId::from_u128(v), Addr((v & 0xffff_ffff) as u32))
    }

    fn state_with(own: u128, others: &[u128]) -> PastryState {
        let mut st = PastryState::new(entry(own), &cfg());
        for &o in others {
            st.on_node_seen(entry(o), 1.0);
        }
        st
    }

    #[test]
    fn next_hop_local_for_own_key() {
        let st = state_with(100, &[90, 110]);
        assert_eq!(
            st.next_hop(NodeId::from_u128(100), false, 1.0, None),
            NextHop::Local
        );
    }

    #[test]
    fn next_hop_uses_leaf_set_in_range() {
        let st = state_with(100, &[90, 110]);
        // Leaf set is not full, so everything is "in range"; 109 resolves
        // to node 110.
        assert_eq!(
            st.next_hop(NodeId::from_u128(109), false, 1.0, None),
            NextHop::Forward(entry(110))
        );
        // 101 resolves locally (own id 100 is closest).
        assert_eq!(
            st.next_hop(NodeId::from_u128(101), false, 1.0, None),
            NextHop::Local
        );
    }

    #[test]
    fn next_hop_uses_routing_table_outside_leaf_range() {
        // Construct a full leaf set around own=2^96, then route to a far key.
        let own = 1u128 << 96;
        let near: Vec<u128> = vec![own - 1, own - 2, own + 1, own + 2];
        let mut st = state_with(own, &near);
        let far_node = entry(0xf000_0000_0000_0000_0000_0000_0000_0000);
        st.on_node_seen(far_node, 1.0);
        let key = NodeId::from_u128(0xf000_0000_0000_0000_0000_0000_0000_1234);
        assert_eq!(
            st.next_hop(key, false, 1.0, None),
            NextHop::Forward(far_node)
        );
    }

    #[test]
    fn next_hop_progress_invariant_randomized() {
        // Whatever hop is chosen, it must be numerically closer to the key
        // than this node (loop freedom).
        let own = 1u128 << 96;
        let mut st = state_with(
            own,
            &[own - 1, own - 2, own + 1, own + 2],
        );
        for v in [0xf0u128 << 120, 0xf1u128 << 120, 0xf2u128 << 120] {
            st.on_node_seen(entry(v), 1.0);
        }
        let key = NodeId::from_u128(0xf3u128 << 120);
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..64 {
            match st.next_hop(key, true, 0.5, Some(&mut rng)) {
                NextHop::Forward(e) => {
                    assert!(e.id.closer_to(key, st.own().id));
                }
                NextHop::Local => panic!("progress expected"),
            }
        }
    }

    #[test]
    fn rare_case_falls_back_to_known_closer_node() {
        // Full leaf set that does not cover the key, an empty routing cell
        // for it, but a neighborhood node that is closer.
        let own = 1u128 << 96;
        let mut st = state_with(own, &[own - 1, own - 2, own + 1, own + 2]);
        // This node shares 0 digits with the key but is numerically closer.
        let key = NodeId::from_u128(0x8000_0000_0000_0000_0000_0000_0000_0000);
        let closer = entry(0x7000_0000_0000_0000_0000_0000_0000_0000);
        // Manually plant in neighborhood only (same cell logic would also
        // put it in the routing table; remove it there to force step 3).
        st.on_node_seen(closer, 1.0);
        st.table.remove(closer.id);
        let hop = st.next_hop(key, false, 1.0, None);
        assert_eq!(hop, NextHop::Forward(closer));
    }

    #[test]
    fn outside_leaf_range_still_makes_progress() {
        // With a full leaf set straddling `own`, any outside key has a
        // leaf member ring-wise closer than `own`; routing must forward
        // to some node strictly closer to the key — never stall.
        let own = 1u128 << 96;
        let st = state_with(own, &[own - 1, own - 2, own + 1, own + 2]);
        let key = NodeId::from_u128(0x9000_0000_0000_0000_0000_0000_0000_0000);
        match st.next_hop(key, false, 1.0, None) {
            NextHop::Forward(e) => assert!(e.id.closer_to(key, st.own().id)),
            NextHop::Local => panic!("expected progress toward the key"),
        }
    }

    #[test]
    fn empty_state_delivers_locally() {
        let st = state_with(42, &[]);
        let key = NodeId::from_u128(0x9000_0000_0000_0000_0000_0000_0000_0000);
        assert_eq!(st.next_hop(key, false, 1.0, None), NextHop::Local);
    }

    #[test]
    fn node_seen_and_failed_update_all_structures() {
        let mut st = state_with(100, &[]);
        let e = entry(90);
        assert_eq!(st.on_node_seen(e, 1.0), LeafChange::Added);
        assert_eq!(st.on_node_seen(e, 1.0), LeafChange::None);
        assert!(st.leaf_set().contains(e.id));
        assert!(!st.routing_table().is_empty());
        assert_eq!(st.on_node_failed(e.id), LeafChange::Removed);
        assert_eq!(st.on_node_failed(e.id), LeafChange::None);
        assert!(!st.leaf_set().contains(e.id));
        assert_eq!(st.routing_table().len(), 0);
        assert_eq!(st.neighborhood().len(), 0);
    }

    #[test]
    fn known_nodes_deduplicates() {
        let st = state_with(100, &[90, 110]);
        // Nodes 90 and 110 appear in leaf set, routing table and
        // neighborhood; known_nodes must report each once.
        assert_eq!(st.known_nodes().len(), 2);
    }

    #[test]
    fn unreliable_table_candidate_demoted_healthy_stays() {
        use past_net::{SimDuration, SimTime};

        let own = 1u128 << 96;
        let mut st = state_with(own, &[own - 1, own - 2, own + 1, own + 2]);
        // Two far candidates that live in the routing table but not the
        // (full) leaf set.
        let flaky = entry(0xf0u128 << 120);
        let healthy = entry(0xe0u128 << 120);
        st.on_node_seen(flaky, 1.0);
        st.on_node_seen(healthy, 1.0);
        assert!(!st.leaf_set().contains(flaky.id));
        assert!(st.routing_table().entries().any(|c| c.entry.id == flaky.id));

        let mut scores = PeerScoreTable::new(SimDuration::from_secs(60));
        let now = SimTime(1_000);
        for _ in 0..8 {
            scores.record_failure(flaky.id, now);
        }
        scores.record_success(healthy.id, now);

        let victims = st.demote_unreliable_candidates(&scores, now, 250);
        assert_eq!(victims, vec![flaky.id]);
        assert!(!st.routing_table().entries().any(|c| c.entry.id == flaky.id));
        // The healthy peer keeps its row; peers with no evidence at all
        // (the near leaf members never scored here) are never judged.
        assert!(st.routing_table().entries().any(|c| c.entry.id == healthy.id));

        // A leaf-set member is exempt no matter how rotten its score.
        let leaf_member = NodeId::from_u128(own + 1);
        for _ in 0..8 {
            scores.record_failure(leaf_member, now);
        }
        assert!(st
            .demote_unreliable_candidates(&scores, now, 250)
            .is_empty());
        assert!(st.leaf_set().contains(leaf_member));
    }

    #[test]
    fn replica_candidates_judged_from_leaf_set() {
        let st = state_with(100, &[90, 95, 105, 110]);
        let reps = st.replica_candidates(NodeId::from_u128(102), 3);
        let ids: Vec<u128> = reps.iter().map(|e| e.id.as_u128()).collect();
        assert_eq!(ids, vec![100, 105, 95]);
        assert!(st.is_among_k_closest(NodeId::from_u128(102), 3));
        assert!(!st.is_among_k_closest(NodeId::from_u128(93), 1));
    }
}
