//! The message-driven Pastry node: join protocol, keep-alives, failure
//! detection and repair, and routed message delivery with per-hop
//! application interception.


use std::cell::{Ref, RefCell};

use past_id::{IdHashMap, NodeId};
use past_net::{Addr, Ctx, Protocol, SimTime};

use crate::config::PastryConfig;
use crate::leaf_set::NodeEntry;
use crate::peer_score::PeerScoreTable;
use crate::routing_table::RouteCell;
use crate::snapshot::{NodeSnapshot, SnapshotCell, SnapshotPeer};
use crate::state::{LeafChange, NextHop, PastryState};

/// Timer token for the periodic keep-alive sweep.
const KEEPALIVE_TOKEN: u64 = 0;
/// Per-hop forward-acknowledgment tokens occupy [FWD, APP).
const FWD_TOKEN_BASE: u64 = 1 << 16;
/// Application timer tokens are offset into their own namespace.
const APP_TOKEN_BASE: u64 = 1 << 48;

/// The body of a Pastry wire message.
#[derive(Clone, Debug)]
pub enum Body<M> {
    /// A routed application message converging on `key`.
    Route {
        /// Destination key.
        key: NodeId,
        /// Network messages traversed so far.
        hops: u32,
        /// The node that originated the route.
        source: NodeEntry,
        /// Application payload.
        msg: M,
    },
    /// Join request converging on the joiner's nodeId; accumulates
    /// routing-table rows from each node along the path.
    JoinRequest {
        /// The joining node.
        joiner: NodeEntry,
        /// (row index, row cells) collected along the route.
        rows: Vec<(u32, Vec<Option<RouteCell>>)>,
        /// Nodes traversed so far.
        path: Vec<NodeEntry>,
    },
    /// Terminal reply from the numerically closest node Z to the joiner.
    JoinReply {
        /// Z's leaf set (Z itself is the envelope sender).
        leaf: Vec<NodeEntry>,
        /// Accumulated routing rows.
        rows: Vec<(u32, Vec<Option<RouteCell>>)>,
        /// Join route path.
        path: Vec<NodeEntry>,
    },
    /// The initial contact A sends its neighborhood set to the joiner
    /// ("X obtains ... the neighborhood set from A").
    NeighborhoodReply {
        /// A's neighborhood members.
        members: Vec<NodeEntry>,
    },
    /// A newly joined node announces itself to every node it knows.
    Announce,
    /// Acknowledgment carrying the receiver's leaf set, which accelerates
    /// convergence of the joiner's state.
    AnnounceAck {
        /// Receiver's leaf-set members.
        leaf: Vec<NodeEntry>,
    },
    /// Keep-alive probe.
    Ping,
    /// Keep-alive response.
    Pong,
    /// Request for the receiver's current leaf set (repair/recovery).
    LeafSetRequest,
    /// Leaf-set contents for repair/recovery.
    LeafSetReply {
        /// Members of the sender's leaf set.
        members: Vec<NodeEntry>,
    },
    /// Notification that `failed` was detected as unresponsive.
    FailureNotice {
        /// The presumed-failed node.
        failed: NodeId,
    },
    /// A direct (unrouted) application message.
    App(M),
}

/// A wire message: sender identity plus body. The sender field lets every
/// receiving node opportunistically refresh its state.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    /// Identity of the sending node.
    pub sender: NodeEntry,
    /// Message body.
    pub body: Body<M>,
}

/// The interface an overlay application (PAST) implements.
///
/// All callbacks receive an [`AppCtx`] exposing routing, direct sends,
/// timers, the proximity metric and read access to the Pastry state.
pub trait Application: Sized {
    /// Application message payload.
    type Msg: Clone;
    /// Harness-visible events.
    type Upcall;

    /// This node completed its join and is fully part of the overlay.
    fn on_joined(&mut self, ctx: &mut AppCtx<'_, '_, Self::Msg, Self::Upcall>) {
        let _ = ctx;
    }

    /// A routed message reached the node responsible for `key`.
    fn deliver(
        &mut self,
        ctx: &mut AppCtx<'_, '_, Self::Msg, Self::Upcall>,
        key: NodeId,
        msg: Self::Msg,
        hops: u32,
        source: NodeEntry,
    );

    /// A routed message is passing through on its way to `key`.
    /// Return `false` to consume it here (delivery will not happen).
    /// The payload may be mutated (e.g. annotated) before forwarding.
    fn forward(
        &mut self,
        ctx: &mut AppCtx<'_, '_, Self::Msg, Self::Upcall>,
        key: NodeId,
        msg: &mut Self::Msg,
        hops: u32,
        source: NodeEntry,
    ) -> bool {
        let _ = (ctx, key, msg, hops, source);
        true
    }

    /// A direct application message arrived.
    fn on_app_message(
        &mut self,
        ctx: &mut AppCtx<'_, '_, Self::Msg, Self::Upcall>,
        from: NodeEntry,
        msg: Self::Msg,
    );

    /// A node entered this node's leaf set.
    fn on_neighbor_added(
        &mut self,
        ctx: &mut AppCtx<'_, '_, Self::Msg, Self::Upcall>,
        node: NodeEntry,
    ) {
        let _ = (ctx, node);
    }

    /// A node left this node's leaf set (failed or displaced).
    fn on_neighbor_removed(
        &mut self,
        ctx: &mut AppCtx<'_, '_, Self::Msg, Self::Upcall>,
        node: NodeEntry,
    ) {
        let _ = (ctx, node);
    }

    /// An application timer armed via [`AppCtx::set_app_timer`] fired.
    fn on_app_timer(&mut self, ctx: &mut AppCtx<'_, '_, Self::Msg, Self::Upcall>, token: u64) {
        let _ = (ctx, token);
    }

    /// Serializes application state for a warm-restart snapshot. Called
    /// at crash time with no context (the node is going down); must be
    /// a pure read. The bytes come back through [`Application::on_restore`].
    fn snapshot(&self) -> Vec<u8> {
        Vec::new()
    }

    /// The node recovered from a warm-restart snapshot; `payload` is
    /// what [`Application::snapshot`] returned at crash time. The
    /// application should validate the payload against its live state
    /// and re-advertise anything the overlay may have re-replicated.
    fn on_restore(&mut self, ctx: &mut AppCtx<'_, '_, Self::Msg, Self::Upcall>, payload: &[u8]) {
        let _ = (ctx, payload);
    }
}

/// Context handed to application callbacks.
pub struct AppCtx<'a, 'b, M, U> {
    state: &'a PastryState,
    cfg: &'a PastryConfig,
    scores: &'a RefCell<PeerScoreTable>,
    demotions: &'a RefCell<Vec<NodeId>>,
    net: &'a mut Ctx<'b, Envelope<M>, U>,
}

impl<'a, 'b, M: Clone, U> AppCtx<'a, 'b, M, U> {
    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.net.now()
    }

    /// This node's identity.
    pub fn own(&self) -> NodeEntry {
        self.state.own()
    }

    /// Read access to the Pastry state (leaf set, routing table, ...).
    pub fn pastry(&self) -> &PastryState {
        self.state
    }

    /// The node's Pastry configuration.
    pub fn config(&self) -> &PastryConfig {
        self.cfg
    }

    /// Emits a harness-visible event.
    pub fn emit(&mut self, upcall: U) {
        self.net.emit(upcall);
    }

    /// Deterministic RNG.
    pub fn rng(&mut self) -> &mut rand::rngs::StdRng {
        self.net.rng()
    }

    /// Proximity between this node and `other`.
    pub fn proximity(&self, other: Addr) -> f64 {
        self.net.proximity(other)
    }

    /// Routes `msg` toward the node responsible for `key`. The message
    /// will surface at each intermediate node's [`Application::forward`]
    /// and at the destination's [`Application::deliver`].
    ///
    /// The message is injected via loopback so that the node's full
    /// forwarding path (including per-hop failure detection when
    /// [`PastryConfig::per_hop_acks`] is on) handles every hop uniformly;
    /// the loopback does not count as a routing hop.
    pub fn route(&mut self, key: NodeId, msg: M) {
        let own = self.state.own();
        self.net.send(
            own.addr,
            Envelope {
                sender: own,
                body: Body::Route {
                    key,
                    hops: 0,
                    source: own,
                    msg,
                },
            },
        );
    }

    /// Sends a direct, unrouted application message to a known node.
    pub fn send_app(&mut self, to: Addr, msg: M) {
        let own = self.state.own();
        self.net.send(
            to,
            Envelope {
                sender: own,
                body: Body::App(msg),
            },
        );
    }

    /// Arms an application timer; it fires at
    /// [`Application::on_app_timer`] with the same token.
    pub fn set_app_timer(&mut self, delay: past_net::SimDuration, token: u64) {
        self.net.set_timer(delay, APP_TOKEN_BASE + token);
    }

    /// The k locally judged replica holders for `key`.
    pub fn replica_candidates(&self, key: NodeId, k: usize) -> Vec<NodeEntry> {
        self.state.replica_candidates(key, k)
    }

    /// Whether this node is among the k numerically closest to `key`.
    pub fn is_among_k_closest(&self, key: NodeId, k: usize) -> bool {
        self.state.is_among_k_closest(key, k)
    }

    /// The decayed reliability of peer `id` in milli-units (0–1000,
    /// 500 = uninformed prior). Deterministic — safe as a sort key.
    pub fn reliability_milli(&self, id: NodeId) -> u64 {
        self.scores.borrow().reliability_milli(id, self.net.now())
    }

    /// Records a successful exchange with `id` (ack received, transfer
    /// fulfilled). A no-op unless [`PastryConfig::track_reliability`].
    pub fn record_peer_success(&mut self, id: NodeId) {
        if self.cfg.track_reliability {
            let now = self.net.now();
            let mut scores = self.scores.borrow_mut();
            scores.record_success(id, now);
            past_obs::observe("pastry.peer.reliability", scores.reliability_milli(id, now));
        }
    }

    /// Records a failed exchange with `id` (timeout, exhausted retries).
    /// A no-op unless [`PastryConfig::track_reliability`].
    pub fn record_peer_failure(&mut self, id: NodeId) {
        if self.cfg.track_reliability {
            let now = self.net.now();
            let mut scores = self.scores.borrow_mut();
            scores.record_failure(id, now);
            past_obs::observe("pastry.peer.reliability", scores.reliability_milli(id, now));
        }
    }

    /// Queues `id` for demotion once the current callback returns: the
    /// overlay evicts it from the leaf set and routing table exactly as
    /// if it had failed (including the gossiped failure notice) and
    /// *shuns* it — the node is never re-admitted into this node's
    /// Pastry state. Used by the audit layer against peers caught
    /// failing a possession proof or serving corrupted content.
    pub fn demote_peer(&mut self, id: NodeId) {
        self.demotions.borrow_mut().push(id);
    }
}

/// A routed message awaiting evidence that its next hop is alive
/// (per-hop lazy repair, see [`PastryConfig::per_hop_acks`]).
struct PendingForward<M> {
    next: NodeEntry,
    sent_at: SimTime,
    key: NodeId,
    /// Hop count the message arrived with (re-forwarding re-runs the
    /// same step).
    hops_in: u32,
    source: NodeEntry,
    msg: M,
}

/// A Pastry overlay node hosting an [`Application`].
pub struct PastryNode<A: Application> {
    cfg: PastryConfig,
    state: PastryState,
    app: A,
    bootstrap: Option<Addr>,
    joined: bool,
    last_heard: IdHashMap<NodeId, SimTime>,
    pending_forwards: IdHashMap<u64, PendingForward<A::Msg>>,
    next_forward_id: u64,
    /// Per-peer reliability evidence (RefCell: the table is updated
    /// through `AppCtx` while the Pastry state is immutably borrowed).
    scores: RefCell<PeerScoreTable>,
    /// Demotions queued by the application via [`AppCtx::demote_peer`],
    /// applied (eviction + shun) after the callback returns.
    demotions: RefCell<Vec<NodeId>>,
    /// Peers this node refuses to re-admit (failed storage audits).
    shunned: std::collections::BTreeSet<NodeId>,
    /// Encoded [`NodeSnapshot`] captured at crash time (warm restarts).
    snapshot_bytes: Option<Vec<u8>>,
    /// Recoveries that restored state from a snapshot.
    restarts_warm: u64,
    /// Recoveries that rejoined cold (no snapshot, or rejected one).
    restarts_cold: u64,
}

impl<A: Application> PastryNode<A> {
    /// Creates a node. `bootstrap` is the address of a nearby existing
    /// node (`None` for the first node of a new overlay).
    pub fn new(cfg: PastryConfig, own: NodeEntry, app: A, bootstrap: Option<Addr>) -> Self {
        cfg.validate();
        let scores = RefCell::new(PeerScoreTable::new(cfg.reliability_half_life));
        PastryNode {
            state: PastryState::new(own, &cfg),
            cfg,
            app,
            bootstrap,
            joined: false,
            last_heard: IdHashMap::default(),
            pending_forwards: IdHashMap::default(),
            next_forward_id: 0,
            scores,
            demotions: RefCell::new(Vec::new()),
            shunned: std::collections::BTreeSet::new(),
            snapshot_bytes: None,
            restarts_warm: 0,
            restarts_cold: 0,
        }
    }

    /// Read access to the Pastry state.
    pub fn state(&self) -> &PastryState {
        &self.state
    }

    /// Read access to the hosted application.
    pub fn app(&self) -> &A {
        &self.app
    }

    /// Mutable access to the hosted application (harness/test setup).
    pub fn app_mut(&mut self) -> &mut A {
        &mut self.app
    }

    /// Whether the node completed its join.
    pub fn is_joined(&self) -> bool {
        self.joined
    }

    /// This node's identity.
    pub fn own(&self) -> NodeEntry {
        self.state.own()
    }

    /// Read access to the peer-reliability table.
    pub fn peer_scores(&self) -> Ref<'_, PeerScoreTable> {
        self.scores.borrow()
    }

    /// `(warm, cold)` recovery counts for this node.
    pub fn restart_counts(&self) -> (u64, u64) {
        (self.restarts_warm, self.restarts_cold)
    }

    /// The encoded snapshot captured at the last crash, if any
    /// (test/diagnostic access).
    pub fn snapshot_bytes(&self) -> Option<&[u8]> {
        self.snapshot_bytes.as_deref()
    }

    /// Runs `f` against the hosted application with a full [`AppCtx`].
    /// This is the entry point for harness-initiated operations (e.g. a
    /// PAST client issuing an insert), used with the simulator's `invoke`.
    pub fn invoke_app<F>(&mut self, ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>, f: F)
    where
        F: FnOnce(&mut A, &mut AppCtx<'_, '_, A::Msg, A::Upcall>),
    {
        let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
        f(&mut self.app, &mut app_ctx);
        self.drain_demotions(ctx);
    }

    /// Peers this node shuns (failed storage audits or corrupted
    /// serving). Shunned peers are never re-admitted to the leaf set,
    /// routing table or neighborhood set.
    pub fn shunned(&self) -> &std::collections::BTreeSet<NodeId> {
        &self.shunned
    }

    fn app_ctx<'a, 'b>(
        state: &'a PastryState,
        cfg: &'a PastryConfig,
        scores: &'a RefCell<PeerScoreTable>,
        demotions: &'a RefCell<Vec<NodeId>>,
        net: &'a mut Ctx<'b, Envelope<A::Msg>, A::Upcall>,
    ) -> AppCtx<'a, 'b, A::Msg, A::Upcall> {
        AppCtx {
            state,
            cfg,
            scores,
            demotions,
            net,
        }
    }

    /// Applies demotions the application queued during its callbacks:
    /// each demoted peer is shunned and evicted through the normal
    /// failure path (leaf-set repair, failure-notice gossip, the app's
    /// `on_neighbor_removed`). Loops because the eviction callbacks can
    /// themselves queue further demotions.
    fn drain_demotions(&mut self, ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>) {
        loop {
            let batch: Vec<NodeId> = std::mem::take(&mut *self.demotions.borrow_mut());
            if batch.is_empty() {
                return;
            }
            for id in batch {
                if id == self.state.own().id || !self.shunned.insert(id) {
                    continue;
                }
                past_obs::counter("pastry.peer.shunned", 1);
                self.handle_failure(ctx, id, true);
            }
        }
    }

    fn send(
        &self,
        ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>,
        to: Addr,
        body: Body<A::Msg>,
    ) {
        ctx.send(
            to,
            Envelope {
                sender: self.state.own(),
                body,
            },
        );
    }

    /// Records contact with a node, updating Pastry state and firing the
    /// application's neighbor callbacks on leaf-set changes.
    fn note_node(
        &mut self,
        ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>,
        entry: NodeEntry,
        update_heard: bool,
    ) {
        if entry.id == self.state.own().id {
            return;
        }
        // A shunned peer (failed storage audit) never re-enters this
        // node's Pastry state, no matter who vouches for it.
        if !self.shunned.is_empty() && self.shunned.contains(&entry.id) {
            return;
        }
        // `last_heard` has exactly two readers — the keep-alive sweep and
        // the forward-ack check — both disabled in static-overlay replay
        // configs, so the per-message timestamp write would be pure
        // overhead there.
        if self.cfg.keep_alive_period.micros() > 0 || self.cfg.per_hop_acks {
            if update_heard {
                self.last_heard.insert(entry.id, ctx.now());
            } else {
                // Hearsay is not proof of liveness, but it must start the
                // liveness clock: a default of time zero would let the first
                // keep-alive sweep declare a freshly learned node failed
                // without ever probing it.
                self.last_heard.entry(entry.id).or_insert_with(|| ctx.now());
            }
        }
        let proximity = ctx.proximity(entry.addr);
        let change = self.state.on_node_seen(entry, proximity);
        if change == LeafChange::Added {
            let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
            self.app.on_neighbor_added(&mut app_ctx, entry);
        }
    }

    /// Records reliability evidence about a peer (no-op unless
    /// [`PastryConfig::track_reliability`]).
    fn score_peer(&self, now: SimTime, id: NodeId, success: bool) {
        if !self.cfg.track_reliability {
            return;
        }
        let mut scores = self.scores.borrow_mut();
        if success {
            scores.record_success(id, now);
        } else {
            scores.record_failure(id, now);
        }
        past_obs::observe("pastry.peer.reliability", scores.reliability_milli(id, now));
    }

    /// Marks a node failed, repairing the leaf set and informing the app.
    fn handle_failure(
        &mut self,
        ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>,
        failed: NodeId,
        notify_leaf: bool,
    ) {
        self.last_heard.remove(&failed);
        self.score_peer(ctx.now(), failed, false);
        let was_member = self.state.leaf_set().contains(failed);
        let entry = self
            .state
            .leaf_set()
            .members()
            .find(|e| e.id == failed)
            .copied();
        let change = self.state.on_node_failed(failed);
        if change == LeafChange::Removed {
            if notify_leaf {
                let members: Vec<NodeEntry> =
                    self.state.leaf_set().members().copied().collect();
                for m in members {
                    self.send(ctx, m.addr, Body::FailureNotice { failed });
                }
            }
            // Repair: pull leaf sets from the current extremes so the gap
            // left by the failed node is refilled.
            let (ccw, cw) = self.state.leaf_set().extremes();
            for e in [ccw, cw].into_iter().flatten() {
                self.send(ctx, e.addr, Body::LeafSetRequest);
            }
            if let Some(entry) = entry {
                let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
                self.app.on_neighbor_removed(&mut app_ctx, entry);
            }
        }
        debug_assert!(was_member == (change == LeafChange::Removed));
    }

    fn handle_route(
        &mut self,
        ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>,
        key: NodeId,
        hops: u32,
        source: NodeEntry,
        mut msg: A::Msg,
    ) {
        let (hop, class) = self.state.next_hop_explained(
            key,
            self.cfg.randomized_routing,
            self.cfg.best_hop_bias,
            Some(ctx.rng()),
        );
        past_obs::counter(class.metric_name(), 1);
        match hop {
            NextHop::Local => {
                past_obs::counter("pastry.delivered", 1);
                past_obs::observe("pastry.route.hops", hops as u64);
                let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
                self.app.deliver(&mut app_ctx, key, msg, hops, source);
            }
            NextHop::Forward(next) => {
                let keep_going = {
                    let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
                    self.app.forward(&mut app_ctx, key, &mut msg, hops, source)
                };
                if keep_going {
                    if self.cfg.per_hop_acks {
                        // Lazy repair: probe the next hop; if it stays
                        // silent past the timeout, presume it failed and
                        // re-route around it.
                        let id = self.next_forward_id;
                        self.next_forward_id += 1;
                        self.pending_forwards.insert(
                            id,
                            PendingForward {
                                next,
                                sent_at: ctx.now(),
                                key,
                                hops_in: hops,
                                source,
                                msg: msg.clone(),
                            },
                        );
                        ctx.set_timer(self.cfg.forward_ack_timeout, FWD_TOKEN_BASE + id);
                        self.send(ctx, next.addr, Body::Ping);
                    }
                    self.send(
                        ctx,
                        next.addr,
                        Body::Route {
                            key,
                            hops: hops + 1,
                            source,
                            msg,
                        },
                    );
                }
            }
        }
    }

    /// A forward-ack timer fired: if the next hop has been silent since
    /// the forward, presume it failed (lazy routing-table repair) and
    /// re-route the message.
    fn check_pending_forward(&mut self, ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>, id: u64) {
        let pf = match self.pending_forwards.remove(&id) {
            Some(pf) => pf,
            None => return,
        };
        let heard = self
            .last_heard
            .get(&pf.next.id)
            .copied()
            .unwrap_or(SimTime::ZERO);
        if heard >= pf.sent_at {
            return; // The hop answered (Pong or any traffic): delivered.
        }
        self.handle_failure(ctx, pf.next.id, true);
        // Route around the failed hop. The failed node is gone from this
        // node's state, so next_hop picks an alternative (or delivers
        // locally if none remains).
        self.handle_route(ctx, pf.key, pf.hops_in, pf.source, pf.msg);
    }

    fn handle_join_request(
        &mut self,
        ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>,
        joiner: NodeEntry,
        mut rows: Vec<(u32, Vec<Option<RouteCell>>)>,
        mut path: Vec<NodeEntry>,
    ) {
        // First node contacted additionally ships its neighborhood set
        // ("X obtains ... the neighborhood set from A").
        if path.is_empty() {
            let members: Vec<NodeEntry> = self
                .state
                .neighborhood()
                .members()
                .map(|n| n.entry)
                .collect();
            self.send(ctx, joiner.addr, Body::NeighborhoodReply { members });
        }
        // Contribute the routing-table row matching the current prefix
        // overlap ("the ith row of the routing table from the ith node
        // encountered along the route from A to Z").
        let row_idx = self.state.own().id.shared_prefix_digits(joiner.id, self.cfg.b);
        let row_idx = row_idx.min(self.state.routing_table().row_count() as u32 - 1);
        rows.push((row_idx, self.state.routing_table().row(row_idx as usize)));
        path.push(self.state.own());
        let hop = self
            .state
            .next_hop(joiner.id, false, 1.0, None);
        match hop {
            NextHop::Forward(next) if next.id != joiner.id => {
                self.send(ctx, next.addr, Body::JoinRequest { joiner, rows, path });
            }
            _ => {
                // This node is Z, the numerically closest: reply with the
                // leaf set and everything collected.
                let leaf: Vec<NodeEntry> = self.state.leaf_set().members().copied().collect();
                self.send(ctx, joiner.addr, Body::JoinReply { leaf, rows, path });
            }
        }
    }

    fn handle_join_reply(
        &mut self,
        ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>,
        z: NodeEntry,
        leaf: Vec<NodeEntry>,
        rows: Vec<(u32, Vec<Option<RouteCell>>)>,
        path: Vec<NodeEntry>,
    ) {
        for entry in leaf
            .into_iter()
            .chain(path)
            .chain(std::iter::once(z))
            .chain(
                rows.into_iter()
                    .flat_map(|(_, row)| row.into_iter().flatten().map(|c| c.entry)),
            )
        {
            self.note_node(ctx, entry, false);
        }
        if !self.joined {
            self.joined = true;
            // Announce arrival to every node that needs to know.
            let known = self.state.known_nodes();
            for n in &known {
                self.send(ctx, n.addr, Body::Announce);
            }
            let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
            self.app.on_joined(&mut app_ctx);
        }
    }

    /// Captures everything worth persisting across a restart.
    fn capture_snapshot(&self, now: SimTime) -> NodeSnapshot {
        NodeSnapshot {
            own: self.state.own(),
            taken_at: now,
            leaf: self.state.leaf_set().members().copied().collect(),
            routing: self
                .state
                .routing_table()
                .entries()
                .map(|c| SnapshotCell {
                    entry: c.entry,
                    proximity: c.proximity,
                })
                .collect(),
            neighborhood: self
                .state
                .neighborhood()
                .members()
                .map(|n| SnapshotCell {
                    entry: n.entry,
                    proximity: n.proximity,
                })
                .collect(),
            peers: self
                .scores
                .borrow()
                .entries_sorted()
                .into_iter()
                .map(|(id, score)| SnapshotPeer { id, score })
                .collect(),
            app: self.app.snapshot(),
        }
    }

    /// Warm recovery: rebuild Pastry state by replaying every snapshot
    /// entry through the normal observation path (`on_node_seen`), so
    /// the restored structures pass the same invariant checks live
    /// traffic would — the snapshot is validated, not trusted. Then
    /// probe a bounded number of the most reliable restored peers
    /// instead of the whole leaf set.
    fn restore_from_snapshot(
        &mut self,
        ctx: &mut Ctx<'_, Envelope<A::Msg>, A::Upcall>,
        snap: NodeSnapshot,
    ) {
        let now = ctx.now();
        self.state = PastryState::new(snap.own, &self.cfg);
        let remembered = snap
            .leaf
            .iter()
            .copied()
            .chain(snap.routing.iter().map(|c| c.entry))
            .chain(snap.neighborhood.iter().map(|c| c.entry));
        let track_heard = self.cfg.keep_alive_period.micros() > 0 || self.cfg.per_hop_acks;
        for entry in remembered {
            if entry.id == snap.own.id {
                continue;
            }
            // Fresh proximity measurement, not the snapshot's: the
            // network may have changed while we were down.
            let proximity = ctx.proximity(entry.addr);
            self.state.on_node_seen(entry, proximity);
            if track_heard {
                // Restart the liveness clock; the probes below and the
                // keep-alive sweep re-verify everyone from here.
                self.last_heard.insert(entry.id, now);
            }
        }
        let mut table = PeerScoreTable::new(self.cfg.reliability_half_life);
        for p in &snap.peers {
            table.insert_raw(p.id, p.score);
        }
        *self.scores.borrow_mut() = table;
        self.joined = true;
        // Bounded, prioritized reconnection: highest reliability first,
        // id as the deterministic tie-break.
        let mut members: Vec<NodeEntry> = self.state.leaf_set().members().copied().collect();
        {
            let scores = self.scores.borrow();
            members.sort_by_key(|m| {
                (
                    std::cmp::Reverse(scores.reliability_milli(m.id, now)),
                    m.id,
                )
            });
        }
        let fanout = match self.cfg.restart_probe_fanout {
            0 => members.len(),
            n => n,
        };
        for m in members.into_iter().take(fanout) {
            self.send(ctx, m.addr, Body::LeafSetRequest);
            self.send(ctx, m.addr, Body::Announce);
        }
        let app_payload = snap.app;
        let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
        self.app.on_restore(&mut app_ctx, &app_payload);
    }
}

impl<A: Application> Protocol for PastryNode<A> {
    type Msg = Envelope<A::Msg>;
    type Upcall = A::Upcall;

    fn on_start(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>) {
        if self.cfg.keep_alive_period.micros() > 0 {
            ctx.set_timer(self.cfg.keep_alive_period, KEEPALIVE_TOKEN);
        }
        match self.bootstrap {
            Some(contact) => {
                self.send(
                    ctx,
                    contact,
                    Body::JoinRequest {
                        joiner: self.state.own(),
                        rows: Vec::new(),
                        path: Vec::new(),
                    },
                );
            }
            None => {
                self.joined = true;
                let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
                self.app.on_joined(&mut app_ctx);
            }
        }
    }

    fn on_crash(&mut self, now: SimTime) {
        if !self.cfg.warm_restart {
            return;
        }
        // "Flush to disk": serialize the node's state so recovery can
        // restore from it. In-flight forwards die with the process.
        self.pending_forwards.clear();
        self.snapshot_bytes = Some(self.capture_snapshot(now).encode());
    }

    fn on_recover(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>) {
        if self.cfg.keep_alive_period.micros() > 0 {
            ctx.set_timer(self.cfg.keep_alive_period, KEEPALIVE_TOKEN);
        }
        if self.cfg.warm_restart {
            let snap = self
                .snapshot_bytes
                .take()
                .and_then(|b| NodeSnapshot::decode(&b).ok())
                .filter(|s| s.own == self.state.own());
            if let Some(snap) = snap {
                self.restarts_warm += 1;
                past_obs::counter("maint.restart.warm", 1);
                self.restore_from_snapshot(ctx, snap);
                return;
            }
            past_obs::counter("maint.restart.cold", 1);
        }
        self.restarts_cold += 1;
        // "A recovering node contacts the nodes in its last known leaf
        // set, obtains their current leaf sets, updates its own leaf set
        // and then notifies the members of its new leaf set."
        let members: Vec<NodeEntry> = self.state.leaf_set().members().copied().collect();
        for m in members {
            self.send(ctx, m.addr, Body::LeafSetRequest);
            self.send(ctx, m.addr, Body::Announce);
        }
    }

    fn on_message(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>, _from: Addr, env: Envelope<A::Msg>) {
        let sender = env.sender;
        // Opportunistically refresh state from the sender identity —
        // except for a join request arriving from the not-yet-joined node
        // itself, which must not enter routing state early.
        let skip_note = matches!(&env.body, Body::JoinRequest { joiner, .. } if joiner.id == sender.id);
        if !skip_note {
            self.note_node(ctx, sender, true);
        }
        match env.body {
            Body::Route {
                key,
                hops,
                source,
                msg,
            } => self.handle_route(ctx, key, hops, source, msg),
            Body::JoinRequest { joiner, rows, path } => {
                self.handle_join_request(ctx, joiner, rows, path)
            }
            Body::JoinReply { leaf, rows, path } => {
                self.handle_join_reply(ctx, sender, leaf, rows, path)
            }
            Body::NeighborhoodReply { members } => {
                for m in members {
                    self.note_node(ctx, m, false);
                }
            }
            Body::Announce => {
                let leaf: Vec<NodeEntry> = self.state.leaf_set().members().copied().collect();
                self.send(ctx, sender.addr, Body::AnnounceAck { leaf });
            }
            Body::AnnounceAck { leaf } => {
                for m in leaf {
                    self.note_node(ctx, m, false);
                }
            }
            Body::Ping => {
                self.send(ctx, sender.addr, Body::Pong);
            }
            Body::Pong => {
                // An explicit liveness ack: positive reliability evidence.
                self.score_peer(ctx.now(), sender.id, true);
            }
            Body::LeafSetRequest => {
                let members: Vec<NodeEntry> = self.state.leaf_set().members().copied().collect();
                self.send(ctx, sender.addr, Body::LeafSetReply { members });
            }
            Body::LeafSetReply { members } => {
                for m in members {
                    self.note_node(ctx, m, false);
                }
            }
            Body::FailureNotice { failed } => {
                // Do not cascade: trust the notice, repair locally.
                self.handle_failure(ctx, failed, false);
            }
            Body::App(msg) => {
                let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
                self.app.on_app_message(&mut app_ctx, sender, msg);
            }
        }
        self.drain_demotions(ctx);
    }

    fn on_timer(&mut self, ctx: &mut Ctx<'_, Self::Msg, Self::Upcall>, token: u64) {
        if token >= APP_TOKEN_BASE {
            let mut app_ctx = Self::app_ctx(&self.state, &self.cfg, &self.scores, &self.demotions, ctx);
            self.app.on_app_timer(&mut app_ctx, token - APP_TOKEN_BASE);
            self.drain_demotions(ctx);
            return;
        }
        if token >= FWD_TOKEN_BASE {
            self.check_pending_forward(ctx, token - FWD_TOKEN_BASE);
            return;
        }
        debug_assert_eq!(token, KEEPALIVE_TOKEN);
        let now = ctx.now();
        let members: Vec<NodeEntry> = self.state.leaf_set().members().copied().collect();
        for m in members {
            let heard = self.last_heard.get(&m.id).copied().unwrap_or(SimTime::ZERO);
            if now - heard >= self.cfg.failure_timeout {
                self.handle_failure(ctx, m.id, true);
            } else if now - heard >= self.cfg.keep_alive_period {
                self.send(ctx, m.addr, Body::Ping);
            }
        }
        // Reliability-driven routing-table hygiene: evict candidates
        // whose decayed peer score fell below the demotion threshold
        // (leaf-set members are exempt — the failure detector above
        // owns their fate).
        if self.cfg.track_reliability && self.cfg.demote_unreliable {
            let victims = self.state.demote_unreliable_candidates(
                &self.scores.borrow(),
                now,
                self.cfg.demote_threshold_milli,
            );
            for _ in &victims {
                past_obs::counter("pastry.table.demoted", 1);
            }
        }
        if self.cfg.keep_alive_period.micros() > 0 {
            ctx.set_timer(self.cfg.keep_alive_period, KEEPALIVE_TOKEN);
        }
    }
}
