//! Warm-restart snapshots.
//!
//! When a node crashes with `warm_restart` enabled it captures a
//! [`NodeSnapshot`] — its leaf set, routing table, neighborhood set,
//! peer scores, and an opaque application payload — as if flushing
//! state to disk. On recovery the snapshot is decoded and *replayed*
//! through the normal state-construction paths (`on_node_seen` etc.),
//! so every restored entry passes the same invariant checks a live
//! observation would: the snapshot is validated, never trusted.
//!
//! The codec is a hand-rolled little-endian byte format (the workspace
//! has no serde): a magic/version header followed by length-prefixed
//! sections. `decode` bounds-checks every read and rejects trailing
//! garbage, truncation, and version mismatches.

use past_id::NodeId;
use past_net::{Addr, SimTime};

use crate::leaf_set::NodeEntry;
use crate::peer_score::PeerScore;

const MAGIC: &[u8; 4] = b"PSNP";
const VERSION: u16 = 1;

/// A node entry with the proximity it was last observed at (routing
/// table and neighborhood entries carry proximity; leaf entries don't).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SnapshotCell {
    /// The peer.
    pub entry: NodeEntry,
    /// Proximity metric at capture time.
    pub proximity: f64,
}

/// One peer-score record in a snapshot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SnapshotPeer {
    /// The scored peer.
    pub id: NodeId,
    /// Its score record at capture time.
    pub score: PeerScore,
}

/// Everything a node persists across a simulated restart.
#[derive(Clone, Debug, PartialEq)]
pub struct NodeSnapshot {
    /// The node's own identity.
    pub own: NodeEntry,
    /// Simulated time of capture.
    pub taken_at: SimTime,
    /// Leaf-set members (both halves, capture order).
    pub leaf: Vec<NodeEntry>,
    /// Populated routing-table cells.
    pub routing: Vec<SnapshotCell>,
    /// Neighborhood-set members.
    pub neighborhood: Vec<SnapshotCell>,
    /// Peer scores, ascending id order.
    pub peers: Vec<SnapshotPeer>,
    /// Opaque application payload (`Application::snapshot`).
    pub app: Vec<u8>,
}

/// Why a snapshot failed to decode.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SnapshotError {
    /// Wrong magic bytes — not a snapshot.
    BadMagic,
    /// Unknown format version.
    BadVersion,
    /// Buffer ended before a declared field.
    Truncated,
    /// Bytes remain after the last field.
    TrailingBytes,
}

impl NodeSnapshot {
    /// Serializes the snapshot.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Vec::with_capacity(
            64 + 20 * self.leaf.len()
                + 28 * (self.routing.len() + self.neighborhood.len())
                + 48 * self.peers.len()
                + self.app.len(),
        );
        w.extend_from_slice(MAGIC);
        put_u16(&mut w, VERSION);
        put_entry(&mut w, self.own);
        put_u64(&mut w, self.taken_at.micros());
        put_u32(&mut w, self.leaf.len() as u32);
        for e in &self.leaf {
            put_entry(&mut w, *e);
        }
        for cells in [&self.routing, &self.neighborhood] {
            put_u32(&mut w, cells.len() as u32);
            for c in cells.iter() {
                put_entry(&mut w, c.entry);
                put_u64(&mut w, c.proximity.to_bits());
            }
        }
        put_u32(&mut w, self.peers.len() as u32);
        for p in &self.peers {
            w.extend_from_slice(&p.id.to_bytes());
            put_u64(&mut w, p.score.successes);
            put_u64(&mut w, p.score.failures);
            put_u64(&mut w, p.score.last_seen.micros());
            put_u64(&mut w, p.score.reliability_milli);
        }
        put_u32(&mut w, self.app.len() as u32);
        w.extend_from_slice(&self.app);
        w
    }

    /// Deserializes a snapshot, validating structure and length.
    pub fn decode(bytes: &[u8]) -> Result<NodeSnapshot, SnapshotError> {
        let mut r = Reader { buf: bytes, at: 0 };
        if r.take(4)? != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        if r.u16()? != VERSION {
            return Err(SnapshotError::BadVersion);
        }
        let own = r.entry()?;
        let taken_at = SimTime(r.u64()?);
        let leaf_n = r.count()?;
        let mut leaf = Vec::with_capacity(leaf_n);
        for _ in 0..leaf_n {
            leaf.push(r.entry()?);
        }
        let mut sections = [Vec::new(), Vec::new()];
        for cells in sections.iter_mut() {
            let n = r.count()?;
            cells.reserve(n);
            for _ in 0..n {
                let entry = r.entry()?;
                let proximity = f64::from_bits(r.u64()?);
                cells.push(SnapshotCell { entry, proximity });
            }
        }
        let [routing, neighborhood] = sections;
        let peers_n = r.count()?;
        let mut peers = Vec::with_capacity(peers_n);
        for _ in 0..peers_n {
            let id = r.node_id()?;
            let successes = r.u64()?;
            let failures = r.u64()?;
            let last_seen = SimTime(r.u64()?);
            let reliability_milli = r.u64()?;
            peers.push(SnapshotPeer {
                id,
                score: PeerScore {
                    successes,
                    failures,
                    last_seen,
                    reliability_milli,
                },
            });
        }
        let app_n = r.count()?;
        let app = r.take(app_n)?.to_vec();
        if r.at != r.buf.len() {
            return Err(SnapshotError::TrailingBytes);
        }
        Ok(NodeSnapshot {
            own,
            taken_at,
            leaf,
            routing,
            neighborhood,
            peers,
            app,
        })
    }
}

fn put_u16(w: &mut Vec<u8>, v: u16) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(w: &mut Vec<u8>, v: u32) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(w: &mut Vec<u8>, v: u64) {
    w.extend_from_slice(&v.to_le_bytes());
}

fn put_entry(w: &mut Vec<u8>, e: NodeEntry) {
    w.extend_from_slice(&e.id.to_bytes());
    put_u32(w, e.addr.0);
}

struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl<'a> Reader<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], SnapshotError> {
        let end = self.at.checked_add(n).ok_or(SnapshotError::Truncated)?;
        if end > self.buf.len() {
            return Err(SnapshotError::Truncated);
        }
        let s = &self.buf[self.at..end];
        self.at = end;
        Ok(s)
    }

    fn u16(&mut self) -> Result<u16, SnapshotError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, SnapshotError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, SnapshotError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn count(&mut self) -> Result<usize, SnapshotError> {
        Ok(self.u32()? as usize)
    }

    fn node_id(&mut self) -> Result<NodeId, SnapshotError> {
        let bytes: [u8; 16] = self.take(16)?.try_into().unwrap();
        Ok(NodeId::from_bytes(bytes))
    }

    fn entry(&mut self) -> Result<NodeEntry, SnapshotError> {
        let id = self.node_id()?;
        let addr = Addr(self.u32()?);
        Ok(NodeEntry::new(id, addr))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(v: u128, a: u32) -> NodeEntry {
        NodeEntry::new(NodeId::from_u128(v), Addr(a))
    }

    fn sample() -> NodeSnapshot {
        NodeSnapshot {
            own: entry(42, 7),
            taken_at: SimTime(123_456),
            leaf: vec![entry(1, 1), entry(2, 2)],
            routing: vec![SnapshotCell {
                entry: entry(3, 3),
                proximity: 1.5,
            }],
            neighborhood: vec![SnapshotCell {
                entry: entry(4, 4),
                proximity: 0.25,
            }],
            peers: vec![SnapshotPeer {
                id: NodeId::from_u128(9),
                score: PeerScore {
                    successes: 10,
                    failures: 2,
                    last_seen: SimTime(99),
                    reliability_milli: 730,
                },
            }],
            app: vec![0xde, 0xad, 0xbe, 0xef],
        }
    }

    #[test]
    fn roundtrip_sample() {
        let s = sample();
        assert_eq!(NodeSnapshot::decode(&s.encode()), Ok(s));
    }

    #[test]
    fn rejects_bad_magic_version_truncation_trailing() {
        let bytes = sample().encode();
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert_eq!(NodeSnapshot::decode(&bad), Err(SnapshotError::BadMagic));
        let mut bad = bytes.clone();
        bad[4] = 0xff;
        assert_eq!(NodeSnapshot::decode(&bad), Err(SnapshotError::BadVersion));
        assert_eq!(
            NodeSnapshot::decode(&bytes[..bytes.len() - 1]),
            Err(SnapshotError::Truncated)
        );
        let mut long = bytes.clone();
        long.push(0);
        assert_eq!(
            NodeSnapshot::decode(&long),
            Err(SnapshotError::TrailingBytes)
        );
    }

    fn cell(v: u128, a: u32, p: u64) -> SnapshotCell {
        // Drive proximity through raw bits, but clear the exponent so
        // no NaN appears (PartialEq on NaN would fail the identity).
        SnapshotCell {
            entry: entry(v, a),
            proximity: f64::from_bits(p & !0x7ff0_0000_0000_0000),
        }
    }

    proptest! {
        #[test]
        fn prop_roundtrip_identity(
            own in any::<(u128, u32)>(),
            at in any::<u64>(),
            leaf_raw in prop::collection::vec(any::<(u128, u32)>(), 0..40),
            routing_raw in prop::collection::vec(any::<(u128, u32, u64)>(), 0..64),
            nbhd_raw in prop::collection::vec(any::<(u128, u32, u64)>(), 0..32),
            peers_raw in prop::collection::vec(any::<(u128, u64, u64, u64)>(), 0..32),
            app in prop::collection::vec(any::<u8>(), 0..256),
        ) {
            let snap = NodeSnapshot {
                own: entry(own.0, own.1),
                taken_at: SimTime(at),
                leaf: leaf_raw.iter().map(|&(v, a)| entry(v, a)).collect(),
                routing: routing_raw.iter().map(|&(v, a, p)| cell(v, a, p)).collect(),
                neighborhood: nbhd_raw.iter().map(|&(v, a, p)| cell(v, a, p)).collect(),
                peers: peers_raw
                    .iter()
                    .map(|&(v, s, f, seen)| SnapshotPeer {
                        id: NodeId::from_u128(v),
                        score: PeerScore {
                            successes: s,
                            failures: f,
                            last_seen: SimTime(seen),
                            reliability_milli: seen % 1001,
                        },
                    })
                    .collect(),
                app,
            };
            let decoded = NodeSnapshot::decode(&snap.encode()).unwrap();
            prop_assert_eq!(&decoded, &snap);
            // Re-encoding the decoded snapshot is byte-identical.
            prop_assert_eq!(decoded.encode(), snap.encode());
        }
    }
}
