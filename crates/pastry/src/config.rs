//! Pastry configuration parameters.

use past_net::SimDuration;

/// Tunable Pastry parameters (paper §2.1).
#[derive(Clone, Debug)]
pub struct PastryConfig {
    /// Digit width in bits; ids are strings of base-2^b digits. Typical
    /// value 4.
    pub b: u32,
    /// Leaf set size `l`: the l/2 numerically closest larger and l/2
    /// closest smaller nodeIds. Typical value 32. Eventual delivery is
    /// guaranteed unless ⌊l/2⌋ adjacent nodes fail simultaneously.
    pub leaf_set_size: usize,
    /// Neighborhood set size (the paper uses `l` here too): the nodes
    /// closest to this node under the *proximity* metric, used to seed
    /// routing state during join.
    pub neighborhood_size: usize,
    /// Period between keep-alive probes to leaf-set members. A zero
    /// period disables keep-alives entirely (useful for static-network
    /// experiments, where it lets the event queue drain).
    pub keep_alive_period: SimDuration,
    /// Unresponsive-node timeout `T`: after this long without hearing from
    /// a leaf-set member, it is presumed failed.
    pub failure_timeout: SimDuration,
    /// Enables randomized routing: instead of always taking the best next
    /// hop, occasionally take another admissible hop (one sharing at least
    /// as long a prefix and numerically closer to the key). Defends
    /// against malicious nodes that swallow messages on a fixed route.
    pub randomized_routing: bool,
    /// Probability of taking the best hop when randomizing ("heavily
    /// biased towards the best choice to ensure low average route delay").
    pub best_hop_bias: f64,
    /// Per-hop acknowledgments for routed messages: the forwarding node
    /// detects a dead next hop by timeout, removes it from its state
    /// ("routing table entries that refer to failed nodes are repaired
    /// lazily") and re-forwards around it. Costs one extra message and a
    /// timer per hop; static-network experiments disable it.
    pub per_hop_acks: bool,
    /// How long a forwarding node waits for the next hop's receipt
    /// acknowledgment before presuming it failed.
    pub forward_ack_timeout: SimDuration,
    /// Warm restarts: on crash the node captures a state snapshot
    /// (leaf set, routing table, neighborhood, peer scores, application
    /// payload) and on recovery restores from it — replaying every
    /// entry through the normal validation paths — instead of rejoining
    /// cold. Off by default so legacy runs stay byte-identical.
    pub warm_restart: bool,
    /// Per-peer reliability tracking: score peers on acks/timeouts and
    /// maintenance outcomes, and let the application weight placement
    /// decisions by reliability. Off by default (byte-identical runs).
    pub track_reliability: bool,
    /// Half-life of the exponential reliability decay: after this long
    /// without evidence, a score has moved half way back to the
    /// uninformed prior. Zero disables decay.
    pub reliability_half_life: SimDuration,
    /// Warm-restart reconnection fan-out: on recovery, probe at most
    /// this many restored peers (highest reliability first) instead of
    /// the whole leaf set. Zero means "no bound" (probe every restored
    /// leaf member, like a cold recovery does).
    pub restart_probe_fanout: usize,
    /// Reliability-driven routing-table demotion: each keep-alive sweep
    /// evicts routing-table candidates whose decayed peer score fell
    /// below [`PastryConfig::demote_threshold_milli`] (leaf-set members
    /// are exempt — the failure detector owns them). Requires
    /// `track_reliability`; off by default.
    pub demote_unreliable: bool,
    /// Score floor (milli-units, 0–1000) below which a routing-table
    /// candidate is demoted. The uninformed prior is 500, so the
    /// default of 250 only evicts peers with sustained failure evidence.
    pub demote_threshold_milli: u64,
}

impl Default for PastryConfig {
    fn default() -> Self {
        PastryConfig {
            b: 4,
            leaf_set_size: 32,
            neighborhood_size: 32,
            keep_alive_period: SimDuration::from_secs(30),
            failure_timeout: SimDuration::from_secs(90),
            randomized_routing: false,
            best_hop_bias: 0.9,
            per_hop_acks: false,
            forward_ack_timeout: SimDuration::from_millis(500),
            warm_restart: false,
            track_reliability: false,
            reliability_half_life: SimDuration::from_secs(300),
            restart_probe_fanout: 8,
            demote_unreliable: false,
            demote_threshold_milli: 250,
        }
    }
}

impl PastryConfig {
    /// Validates invariants between parameters.
    ///
    /// # Panics
    ///
    /// Panics if `b` is unsupported, the leaf set is not a non-zero even
    /// size, or the bias is outside `[0, 1]`.
    pub fn validate(&self) {
        past_id::Digits::check_base(self.b);
        assert!(
            self.leaf_set_size >= 2 && self.leaf_set_size.is_multiple_of(2),
            "leaf set size must be even and >= 2"
        );
        assert!(
            (0.0..=1.0).contains(&self.best_hop_bias),
            "best_hop_bias must be a probability"
        );
    }

    /// Half the leaf set: entries kept on each side of the node.
    pub fn leaf_half(&self) -> usize {
        self.leaf_set_size / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_paper_configuration() {
        let c = PastryConfig::default();
        c.validate();
        assert_eq!(c.b, 4);
        assert_eq!(c.leaf_set_size, 32);
        assert_eq!(c.leaf_half(), 16);
        // Robustness extensions ship disabled: default runs must stay
        // byte-identical to the paper configuration.
        assert!(!c.warm_restart);
        assert!(!c.track_reliability);
        assert!(!c.demote_unreliable);
    }

    #[test]
    #[should_panic]
    fn odd_leaf_set_rejected() {
        PastryConfig {
            leaf_set_size: 15,
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic]
    fn bad_digit_base_rejected() {
        PastryConfig {
            b: 5,
            ..Default::default()
        }
        .validate();
    }
}
