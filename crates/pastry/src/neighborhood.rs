//! The neighborhood set: the `l` nodes closest to the present node
//! according to the *proximity* metric (not the nodeId space).
//!
//! The neighborhood set is not used in routing; it seeds locality-aware
//! routing-table construction during node addition and recovery.

use past_id::NodeId;

use crate::leaf_set::NodeEntry;

/// One neighborhood member with its proximity to the owner.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Neighbor {
    /// The member node.
    pub entry: NodeEntry,
    /// Proximity to the set's owner.
    pub proximity: f64,
}

/// The neighborhood set of one node: up to `capacity` proximally closest
/// nodes, sorted closest-first.
#[derive(Clone, Debug)]
pub struct NeighborhoodSet {
    own: NodeId,
    capacity: usize,
    members: Vec<Neighbor>,
}

impl NeighborhoodSet {
    /// Creates an empty set with the given capacity.
    pub fn new(own: NodeId, capacity: usize) -> Self {
        NeighborhoodSet {
            own,
            capacity,
            members: Vec::with_capacity(capacity),
        }
    }

    /// Considers a node for membership; keeps the `capacity` closest.
    /// Returns `true` if the set changed.
    pub fn consider(&mut self, entry: NodeEntry, proximity: f64) -> bool {
        if entry.id == self.own {
            return false;
        }
        if let Some(pos) = self.members.iter().position(|n| n.entry.id == entry.id) {
            if self.members[pos].entry.addr != entry.addr
                || self.members[pos].proximity != proximity
            {
                self.members.remove(pos);
                // Reinsert at the right rank below.
            } else {
                return false;
            }
        }
        let pos = self
            .members
            .binary_search_by(|n| n.proximity.partial_cmp(&proximity).expect("finite proximity"))
            .unwrap_or_else(|p| p);
        if pos >= self.capacity {
            return false;
        }
        self.members.insert(pos, Neighbor { entry, proximity });
        self.members.truncate(self.capacity);
        true
    }

    /// Removes a node. Returns `true` if present.
    pub fn remove(&mut self, id: NodeId) -> bool {
        if let Some(pos) = self.members.iter().position(|n| n.entry.id == id) {
            self.members.remove(pos);
            true
        } else {
            false
        }
    }

    /// Iterates over members, closest first.
    pub fn members(&self) -> impl Iterator<Item = &Neighbor> {
        self.members.iter()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// Returns `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_net::Addr;

    fn entry(v: u32) -> NodeEntry {
        NodeEntry::new(NodeId::from_u128(v as u128), Addr(v))
    }

    #[test]
    fn keeps_closest_by_proximity() {
        let mut nh = NeighborhoodSet::new(NodeId::from_u128(0), 2);
        nh.consider(entry(1), 5.0);
        nh.consider(entry(2), 1.0);
        nh.consider(entry(3), 3.0);
        let ids: Vec<u32> = nh.members().map(|n| n.entry.addr.0).collect();
        assert_eq!(ids, vec![2, 3]);
    }

    #[test]
    fn rejects_self_and_duplicates() {
        let own = NodeId::from_u128(9);
        let mut nh = NeighborhoodSet::new(own, 4);
        assert!(!nh.consider(NodeEntry::new(own, Addr(9)), 0.0));
        assert!(nh.consider(entry(1), 1.0));
        assert!(!nh.consider(entry(1), 1.0), "identical refresh is a no-op");
        assert_eq!(nh.len(), 1);
    }

    #[test]
    fn refresh_updates_rank() {
        let mut nh = NeighborhoodSet::new(NodeId::from_u128(0), 4);
        nh.consider(entry(1), 5.0);
        nh.consider(entry(2), 1.0);
        // Node 1 moves closer; it should now rank first.
        assert!(nh.consider(entry(1), 0.5));
        let ids: Vec<u32> = nh.members().map(|n| n.entry.addr.0).collect();
        assert_eq!(ids, vec![1, 2]);
        assert_eq!(nh.len(), 2);
    }

    #[test]
    fn remove_works() {
        let mut nh = NeighborhoodSet::new(NodeId::from_u128(0), 4);
        nh.consider(entry(1), 1.0);
        assert!(nh.remove(NodeId::from_u128(1)));
        assert!(!nh.remove(NodeId::from_u128(1)));
        assert!(nh.is_empty());
    }

    #[test]
    fn far_node_rejected_when_full() {
        let mut nh = NeighborhoodSet::new(NodeId::from_u128(0), 2);
        nh.consider(entry(1), 1.0);
        nh.consider(entry(2), 2.0);
        assert!(!nh.consider(entry(3), 9.0));
        assert_eq!(nh.len(), 2);
    }
}
