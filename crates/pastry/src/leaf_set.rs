//! The leaf set: the `l` nodes with nodeIds numerically closest to the
//! present node (`l/2` larger, `l/2` smaller).
//!
//! The leaf set anchors both routing correctness (a message whose key
//! falls within the leaf-set range is delivered to the numerically
//! closest member in one hop) and PAST's storage invariant (the `k`
//! replica holders of a file are, by construction, within the leaf sets
//! of one another, which is what makes replica diversion a purely local
//! operation).

use past_id::NodeId;
use past_net::Addr;

/// A known node: identifier plus network address.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Hash)]
pub struct NodeEntry {
    /// The node's Pastry identifier.
    pub id: NodeId,
    /// The node's emulated network address.
    pub addr: Addr,
}

impl NodeEntry {
    /// Convenience constructor.
    pub fn new(id: NodeId, addr: Addr) -> Self {
        NodeEntry { id, addr }
    }
}

/// The leaf set of one node.
#[derive(Clone, Debug)]
pub struct LeafSet {
    own: NodeId,
    half: usize,
    /// Nodes counter-clockwise of `own` (numerically smaller, with
    /// wraparound), sorted nearest-first.
    smaller: Vec<NodeEntry>,
    /// Nodes clockwise of `own`, sorted nearest-first.
    larger: Vec<NodeEntry>,
}

impl LeafSet {
    /// Creates an empty leaf set for a node with identifier `own`,
    /// keeping up to `half` entries per side.
    pub fn new(own: NodeId, half: usize) -> Self {
        assert!(half >= 1, "leaf set must keep at least one node per side");
        LeafSet {
            own,
            half,
            smaller: Vec::with_capacity(half),
            larger: Vec::with_capacity(half),
        }
    }

    /// The owning node's identifier.
    pub fn own_id(&self) -> NodeId {
        self.own
    }

    /// Entries per side.
    pub fn half(&self) -> usize {
        self.half
    }

    /// Returns `true` if `id` belongs on the clockwise ("larger") side.
    fn is_cw(&self, id: NodeId) -> bool {
        self.own.cw_distance(id) <= self.own.ccw_distance(id)
    }

    /// Inserts a node, evicting the farthest member of its side when full.
    /// Returns `true` if the set changed.
    pub fn insert(&mut self, entry: NodeEntry) -> bool {
        if entry.id == self.own || self.contains(entry.id) {
            return false;
        }
        let own = self.own;
        if self.is_cw(entry.id) {
            let half = self.half;
            Self::insert_side(&mut self.larger, entry, half, |id| own.cw_distance(id))
        } else {
            let half = self.half;
            Self::insert_side(&mut self.smaller, entry, half, |id| own.ccw_distance(id))
        }
    }

    fn insert_side(
        side: &mut Vec<NodeEntry>,
        entry: NodeEntry,
        half: usize,
        dist: impl Fn(NodeId) -> u128,
    ) -> bool {
        let pos = side
            .binary_search_by(|e| dist(e.id).cmp(&dist(entry.id)))
            .unwrap_or_else(|p| p);
        if pos >= half {
            return false;
        }
        side.insert(pos, entry);
        side.truncate(half);
        true
    }

    /// Removes a node by identifier. Returns its entry if present.
    pub fn remove(&mut self, id: NodeId) -> Option<NodeEntry> {
        for side in [&mut self.smaller, &mut self.larger] {
            if let Some(pos) = side.iter().position(|e| e.id == id) {
                return Some(side.remove(pos));
            }
        }
        None
    }

    /// Returns `true` if `id` is a member.
    pub fn contains(&self, id: NodeId) -> bool {
        self.smaller.iter().any(|e| e.id == id) || self.larger.iter().any(|e| e.id == id)
    }

    /// Iterates over all members (both sides), no particular order.
    pub fn members(&self) -> impl Iterator<Item = &NodeEntry> {
        self.smaller.iter().chain(self.larger.iter())
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.smaller.len() + self.larger.len()
    }

    /// Returns `true` if the set has no members.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The farthest member on each side (counter-clockwise extreme,
    /// clockwise extreme), if present. PAST's §3.5 overflow handling asks
    /// exactly these two nodes to search *their* leaf sets for space.
    pub fn extremes(&self) -> (Option<NodeEntry>, Option<NodeEntry>) {
        (self.smaller.last().copied(), self.larger.last().copied())
    }

    /// Whether `key` falls within the leaf-set range, i.e. between the
    /// extreme members (inclusive). If either side is not full, this node
    /// knows every node on that arc, so the range extends accordingly and
    /// we report coverage (routing then resolves to the closest member).
    pub fn covers(&self, key: NodeId) -> bool {
        if self.smaller.len() < self.half || self.larger.len() < self.half {
            return true;
        }
        let low = self.smaller.last().expect("side full").id;
        let high = self.larger.last().expect("side full").id;
        // The covered arc runs clockwise from `low` through `own` to `high`.
        low.cw_distance(key) <= low.cw_distance(high)
    }

    /// The member (or the node itself) numerically closest to `key`.
    pub fn closest(&self, key: NodeId) -> NodeEntry {
        let mut best: Option<NodeEntry> = None;
        for e in self.members() {
            match best {
                None => best = Some(*e),
                Some(b) => {
                    if e.id.closer_to(key, b.id) {
                        best = Some(*e);
                    }
                }
            }
        }
        // Compare against self (address unknown here, so the caller passes
        // its own entry); we return the best member and let the caller
        // compare with itself via `closer_to`.
        best.unwrap_or(NodeEntry::new(self.own, Addr(u32::MAX)))
    }

    /// The `k` nodes numerically closest to `key` among this node and its
    /// leaf set — PAST's candidate replica holders for a file with this
    /// key. `own_addr` supplies this node's address for the self entry.
    pub fn replica_candidates(&self, key: NodeId, k: usize, own_addr: Addr) -> Vec<NodeEntry> {
        // Hot path: runs on every insert attempt at the coordinator.
        // Distances are computed once per entry (not per comparison),
        // and only the k survivors are fully sorted — the partition
        // step is O(n). Result is identical to sorting everything by
        // (ring distance, id) and truncating.
        let mut all: Vec<(u128, NodeEntry)> = self
            .members()
            .map(|e| (e.id.ring_distance(key), *e))
            .collect();
        all.push((self.own.ring_distance(key), NodeEntry::new(self.own, own_addr)));
        let cmp = |a: &(u128, NodeEntry), b: &(u128, NodeEntry)| {
            a.0.cmp(&b.0).then(a.1.id.cmp(&b.1.id))
        };
        if k == 0 {
            return Vec::new();
        }
        if all.len() > k {
            all.select_nth_unstable_by(k - 1, cmp);
            all.truncate(k);
        }
        all.sort_unstable_by(cmp);
        all.into_iter().map(|(_, e)| e).collect()
    }

    /// Returns `true` if this node is among the `k` numerically closest
    /// to `key`, judged from its local leaf set. Equivalent to checking
    /// membership in [`LeafSet::replica_candidates`] but allocation-free
    /// (this test runs on every forwarded insert).
    pub fn is_among_k_closest(&self, key: NodeId, k: usize, own_addr: Addr) -> bool {
        let _ = own_addr;
        let closer = self
            .members()
            .filter(|e| e.id.closer_to(key, self.own))
            .count();
        closer < k
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn entry(v: u128) -> NodeEntry {
        NodeEntry::new(NodeId::from_u128(v), Addr(v as u32))
    }

    fn set_with(own: u128, half: usize, ids: &[u128]) -> LeafSet {
        let mut ls = LeafSet::new(NodeId::from_u128(own), half);
        for &id in ids {
            ls.insert(entry(id));
        }
        ls
    }

    #[test]
    fn insert_splits_sides() {
        let ls = set_with(100, 2, &[90, 95, 105, 110]);
        assert_eq!(ls.len(), 4);
        assert!(ls.contains(NodeId::from_u128(90)));
        assert!(ls.contains(NodeId::from_u128(110)));
    }

    #[test]
    fn eviction_keeps_nearest() {
        let ls = set_with(100, 2, &[90, 95, 97, 80]);
        // Smaller side holds only the two nearest: 97 and 95.
        assert!(ls.contains(NodeId::from_u128(97)));
        assert!(ls.contains(NodeId::from_u128(95)));
        assert!(!ls.contains(NodeId::from_u128(90)));
        assert!(!ls.contains(NodeId::from_u128(80)));
    }

    #[test]
    fn duplicate_and_self_inserts_rejected() {
        let mut ls = set_with(100, 2, &[90]);
        assert!(!ls.insert(entry(90)));
        assert!(!ls.insert(entry(100)));
        assert_eq!(ls.len(), 1);
    }

    #[test]
    fn remove_returns_entry() {
        let mut ls = set_with(100, 2, &[90, 110]);
        let removed = ls.remove(NodeId::from_u128(110)).unwrap();
        assert_eq!(removed.addr, Addr(110));
        assert!(!ls.contains(NodeId::from_u128(110)));
        assert!(ls.remove(NodeId::from_u128(110)).is_none());
    }

    #[test]
    fn wraparound_sides() {
        // Node near the top of the ring: slightly larger ids wrap to 0+.
        let own = u128::MAX - 5;
        let ls = set_with(own, 2, &[u128::MAX - 1, 3, u128::MAX - 10, u128::MAX - 20]);
        // u128::MAX-1 and 3 are clockwise (larger side with wraparound).
        let (ccw, cw) = ls.extremes();
        assert_eq!(cw.unwrap().id, NodeId::from_u128(3));
        assert_eq!(ccw.unwrap().id, NodeId::from_u128(u128::MAX - 20));
    }

    #[test]
    fn covers_within_range() {
        let ls = set_with(100, 2, &[80, 90, 110, 120]);
        assert!(ls.covers(NodeId::from_u128(100)));
        assert!(ls.covers(NodeId::from_u128(85)));
        assert!(ls.covers(NodeId::from_u128(80)));
        assert!(ls.covers(NodeId::from_u128(120)));
        assert!(!ls.covers(NodeId::from_u128(79)));
        assert!(!ls.covers(NodeId::from_u128(121)));
        assert!(!ls.covers(NodeId::from_u128(u128::MAX / 2)));
    }

    #[test]
    fn covers_everything_when_not_full() {
        let ls = set_with(100, 2, &[90, 110]);
        assert!(ls.covers(NodeId::from_u128(u128::MAX / 2)));
    }

    #[test]
    fn closest_finds_nearest_member() {
        let ls = set_with(100, 2, &[80, 90, 110, 120]);
        assert_eq!(ls.closest(NodeId::from_u128(111)).id, NodeId::from_u128(110));
        assert_eq!(ls.closest(NodeId::from_u128(84)).id, NodeId::from_u128(80));
    }

    #[test]
    fn replica_candidates_sorted_by_distance() {
        let ls = set_with(100, 3, &[80, 90, 110, 120, 130]);
        let reps = ls.replica_candidates(NodeId::from_u128(105), 3, Addr(100));
        let ids: Vec<u128> = reps.iter().map(|e| e.id.as_u128()).collect();
        assert_eq!(ids, vec![100, 110, 90]);
    }

    #[test]
    fn is_among_k_closest() {
        let ls = set_with(100, 3, &[80, 90, 110, 120, 130]);
        assert!(ls.is_among_k_closest(NodeId::from_u128(99), 1, Addr(100)));
        assert!(!ls.is_among_k_closest(NodeId::from_u128(121), 1, Addr(100)));
        // Key 101: distances are 100→1, 110→9, 90→11, so own is in the top 3.
        assert!(ls.is_among_k_closest(NodeId::from_u128(101), 3, Addr(100)));
        // Key 121: distances are 120→1, 130→9, 110→11; own (21) is not.
        assert!(!ls.is_among_k_closest(NodeId::from_u128(121), 3, Addr(100)));
    }

    proptest! {
        #[test]
        fn prop_sides_never_exceed_half(own: u128, ids: Vec<u128>, half in 1usize..8) {
            let mut ls = LeafSet::new(NodeId::from_u128(own), half);
            for id in ids {
                ls.insert(entry(id));
            }
            prop_assert!(ls.smaller.len() <= half);
            prop_assert!(ls.larger.len() <= half);
        }

        #[test]
        fn prop_sides_sorted_nearest_first(own: u128, ids: Vec<u128>, half in 1usize..8) {
            let mut ls = LeafSet::new(NodeId::from_u128(own), half);
            for id in ids {
                ls.insert(entry(id));
            }
            let o = NodeId::from_u128(own);
            for w in ls.smaller.windows(2) {
                prop_assert!(o.ccw_distance(w[0].id) <= o.ccw_distance(w[1].id));
            }
            for w in ls.larger.windows(2) {
                prop_assert!(o.cw_distance(w[0].id) <= o.cw_distance(w[1].id));
            }
        }

        #[test]
        fn prop_kept_members_are_the_nearest_per_side(own: u128, ids: Vec<u128>, half in 1usize..4) {
            // After inserting everything, each side must contain exactly the
            // `half` nearest ids on that side (dedup'd, excluding own).
            let o = NodeId::from_u128(own);
            let mut ls = LeafSet::new(o, half);
            let mut uniq: Vec<u128> = ids.clone();
            uniq.sort();
            uniq.dedup();
            uniq.retain(|&v| v != own);
            for &id in &uniq {
                ls.insert(entry(id));
            }
            let mut cw: Vec<u128> = uniq
                .iter()
                .copied()
                .filter(|&v| o.cw_distance(NodeId::from_u128(v)) <= o.ccw_distance(NodeId::from_u128(v)))
                .collect();
            cw.sort_by_key(|&v| o.cw_distance(NodeId::from_u128(v)));
            cw.truncate(half);
            let mut got: Vec<u128> = ls.larger.iter().map(|e| e.id.as_u128()).collect();
            got.sort_by_key(|&v| o.cw_distance(NodeId::from_u128(v)));
            prop_assert_eq!(got, cw);
        }

        #[test]
        fn prop_replica_candidates_closest_first(own: u128, ids: Vec<u128>, key: u128, k in 1usize..6) {
            let mut ls = LeafSet::new(NodeId::from_u128(own), 8);
            for id in ids {
                ls.insert(entry(id));
            }
            let keyn = NodeId::from_u128(key);
            let reps = ls.replica_candidates(keyn, k, Addr(0));
            prop_assert!(reps.len() <= k);
            for w in reps.windows(2) {
                prop_assert!(w[0].id.ring_distance(keyn) <= w[1].id.ring_distance(keyn));
            }
        }
    }
}
