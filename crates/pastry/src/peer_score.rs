//! Per-peer reliability tracking.
//!
//! Every node keeps a small history for each peer it has interacted
//! with: how many exchanges succeeded, how many timed out, when the
//! peer was last seen, and an exponentially-decayed reliability score.
//! The score is a fixed-point value in `[0, 1000]` (milli-units) that
//! moves toward 1000 on success, toward 0 on failure, and decays back
//! toward the uninformed prior (500) with a configurable half-life —
//! stale evidence loses weight, so a peer that flapped an hour ago is
//! not punished forever.
//!
//! All arithmetic is integer fixed-point: scores are byte-identical
//! across platforms and shard counts, and `reliability_milli` is safe
//! to use as a deterministic sort key.

use past_id::{IdHashMap, NodeId};
use past_net::{SimDuration, SimTime};

/// The uninformed prior: what we assume about a peer we know nothing
/// about, and the value stale scores decay back toward.
pub const RELIABILITY_PRIOR_MILLI: u64 = 500;

/// EWMA step: each observation moves the score 1/4 of the way toward
/// its target (1000 on success, 0 on failure).
const STEP_SHIFT: u32 = 2;

/// One peer's interaction history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PeerScore {
    /// Exchanges that completed (acks, pongs, fulfilled fetches).
    pub successes: u64,
    /// Exchanges that timed out or were abandoned.
    pub failures: u64,
    /// Last time any evidence about this peer arrived.
    pub last_seen: SimTime,
    /// Decayed reliability in milli-units at `last_seen`.
    pub reliability_milli: u64,
}

impl PeerScore {
    fn fresh(now: SimTime) -> Self {
        PeerScore {
            successes: 0,
            failures: 0,
            last_seen: now,
            reliability_milli: RELIABILITY_PRIOR_MILLI,
        }
    }

    /// The score decayed from `last_seen` to `now`, without recording
    /// new evidence. Decay halves the distance to the prior once per
    /// half-life, with linear interpolation inside a half-life.
    pub fn decayed(&self, now: SimTime, half_life: SimDuration) -> u64 {
        decay_toward_prior(self.reliability_milli, now - self.last_seen, half_life)
    }

    fn observe(&mut self, now: SimTime, half_life: SimDuration, success: bool) {
        let rel = self.decayed(now, half_life);
        self.reliability_milli = if success {
            self.successes += 1;
            rel + ((1000 - rel) >> STEP_SHIFT)
        } else {
            self.failures += 1;
            rel - (rel >> STEP_SHIFT)
        };
        self.last_seen = now;
    }
}

/// Applies `elapsed` worth of exponential decay toward the prior.
///
/// The decay factor `2^-(elapsed / half_life)` is evaluated in integer
/// fixed-point: a right shift per whole half-life elapsed, then a
/// linear interpolation toward the next halving for the remainder.
fn decay_toward_prior(rel: u64, elapsed: SimDuration, half_life: SimDuration) -> u64 {
    if half_life == SimDuration::ZERO || elapsed == SimDuration::ZERO {
        return rel;
    }
    let h = half_life.micros();
    let whole = elapsed.micros() / h;
    if whole >= 63 {
        return RELIABILITY_PRIOR_MILLI;
    }
    let frac = elapsed.micros() % h;
    // Distance from the prior, halved `whole` times, then shrunk
    // linearly by frac/h of another halving (u128: |delta| ≤ 500 and
    // frac < h ≤ u64::MAX, so the product needs the headroom).
    let delta = rel as i64 - RELIABILITY_PRIOR_MILLI as i64;
    let halved = delta >> whole; // arithmetic shift keeps the sign
    let interp = halved - ((halved as i128) * (frac as i128) / (2 * h as i128)) as i64;
    (RELIABILITY_PRIOR_MILLI as i64 + interp) as u64
}

/// The per-node table of peer scores.
#[derive(Clone, Debug, Default)]
pub struct PeerScoreTable {
    half_life: SimDuration,
    scores: IdHashMap<NodeId, PeerScore>,
}

impl PeerScoreTable {
    /// A table decaying scores with the given half-life (zero disables
    /// decay).
    pub fn new(half_life: SimDuration) -> Self {
        PeerScoreTable {
            half_life,
            scores: IdHashMap::default(),
        }
    }

    /// Records a successful exchange with `id` at `now`.
    pub fn record_success(&mut self, id: NodeId, now: SimTime) {
        self.scores
            .entry(id)
            .or_insert_with(|| PeerScore::fresh(now))
            .observe(now, self.half_life, true);
    }

    /// Records a failed exchange (timeout, abandoned transfer) with
    /// `id` at `now`.
    pub fn record_failure(&mut self, id: NodeId, now: SimTime) {
        self.scores
            .entry(id)
            .or_insert_with(|| PeerScore::fresh(now))
            .observe(now, self.half_life, false);
    }

    /// The decayed reliability of `id` at `now`, in milli-units.
    /// Unknown peers get the prior — no evidence either way.
    pub fn reliability_milli(&self, id: NodeId, now: SimTime) -> u64 {
        self.scores
            .get(&id)
            .map(|s| s.decayed(now, self.half_life))
            .unwrap_or(RELIABILITY_PRIOR_MILLI)
    }

    /// The raw score record for `id`, if any evidence exists.
    pub fn get(&self, id: NodeId) -> Option<&PeerScore> {
        self.scores.get(&id)
    }

    /// Number of peers with recorded evidence.
    pub fn len(&self) -> usize {
        self.scores.len()
    }

    /// Returns `true` when no evidence has been recorded.
    pub fn is_empty(&self) -> bool {
        self.scores.is_empty()
    }

    /// All scores in ascending id order (snapshots need a canonical
    /// order; the map itself iterates in hash order).
    pub fn entries_sorted(&self) -> Vec<(NodeId, PeerScore)> {
        let mut v: Vec<_> = self.scores.iter().map(|(id, s)| (*id, *s)).collect();
        v.sort_unstable_by_key(|(id, _)| *id);
        v
    }

    /// Reinstates a score record verbatim (snapshot restore).
    pub fn insert_raw(&mut self, id: NodeId, score: PeerScore) {
        self.scores.insert(id, score);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const H: SimDuration = SimDuration::from_secs(60);

    fn id(v: u128) -> NodeId {
        NodeId::from_u128(v)
    }

    #[test]
    fn unknown_peer_gets_prior() {
        let t = PeerScoreTable::new(H);
        assert_eq!(t.reliability_milli(id(1), SimTime(5)), 500);
    }

    #[test]
    fn successes_raise_failures_lower() {
        let mut t = PeerScoreTable::new(H);
        let now = SimTime(1_000);
        t.record_success(id(1), now);
        assert!(t.reliability_milli(id(1), now) > 500);
        t.record_failure(id(2), now);
        assert!(t.reliability_milli(id(2), now) < 500);
        let s = t.get(id(1)).unwrap();
        assert_eq!((s.successes, s.failures), (1, 0));
    }

    #[test]
    fn score_saturates_within_bounds() {
        let mut t = PeerScoreTable::new(H);
        let now = SimTime(0);
        for _ in 0..100 {
            t.record_success(id(1), now);
            t.record_failure(id(2), now);
        }
        assert!(t.reliability_milli(id(1), now) <= 1000);
        // 1 - (1 - 1/4)^100 → the EWMA converges just short of 1000.
        assert!(t.reliability_milli(id(1), now) >= 990);
        assert!(t.reliability_milli(id(2), now) <= 10);
    }

    #[test]
    fn decay_halves_distance_per_half_life() {
        let mut t = PeerScoreTable::new(H);
        for _ in 0..100 {
            t.record_success(id(1), SimTime(0));
        }
        let at0 = t.reliability_milli(id(1), SimTime(0));
        let at1 = t.reliability_milli(id(1), SimTime(0) + H);
        let at2 = t.reliability_milli(id(1), SimTime(0) + H + H);
        assert_eq!(at1 - 500, (at0 - 500) >> 1);
        assert_eq!(at2 - 500, (at0 - 500) >> 2);
        // Far future: fully decayed back to the prior.
        assert_eq!(t.reliability_milli(id(1), SimTime(u64::MAX / 2)), 500);
    }

    #[test]
    fn decay_interpolates_monotonically() {
        let mut t = PeerScoreTable::new(H);
        t.record_failure(id(1), SimTime(0));
        let mut prev = t.reliability_milli(id(1), SimTime(0));
        for step in 1..=8 {
            let now = SimTime(step * H.micros() / 4);
            let cur = t.reliability_milli(id(1), now);
            assert!(cur >= prev, "decay toward prior must be monotone");
            prev = cur;
        }
        assert!(prev <= 500);
    }

    #[test]
    fn zero_half_life_disables_decay() {
        let mut t = PeerScoreTable::new(SimDuration::ZERO);
        t.record_success(id(1), SimTime(0));
        let early = t.reliability_milli(id(1), SimTime(0));
        assert_eq!(t.reliability_milli(id(1), SimTime(u64::MAX)), early);
    }

    mod props {
        use super::*;
        use proptest::prelude::*;

        /// An arbitrary bounded evidence sequence: (success?, gap µs).
        fn evidence() -> impl Strategy<Value = Vec<(bool, u64)>> {
            prop::collection::vec((any::<bool>(), 0u64..10 * H.micros()), 0..64)
        }

        proptest! {
            #[test]
            fn prop_score_stays_within_bounds(seq in evidence()) {
                let mut t = PeerScoreTable::new(H);
                let mut now = SimTime(0);
                for (success, gap) in seq {
                    now += SimDuration::from_micros(gap);
                    if success {
                        t.record_success(id(7), now);
                    } else {
                        t.record_failure(id(7), now);
                    }
                    let rel = t.reliability_milli(id(7), now);
                    prop_assert!(rel <= 1000, "score {rel} escaped [0, 1000]");
                }
            }

            #[test]
            fn prop_decay_monotone_toward_prior(
                seq in evidence(),
                probes in prop::collection::vec(0u64..100 * H.micros(), 1..16),
            ) {
                let mut t = PeerScoreTable::new(H);
                let mut now = SimTime(0);
                for (success, gap) in seq {
                    now += SimDuration::from_micros(gap);
                    if success {
                        t.record_success(id(7), now);
                    } else {
                        t.record_failure(id(7), now);
                    }
                }
                // After the last evidence, the score only ever moves
                // toward the prior, never past it and never away.
                let mut probes = probes;
                probes.sort_unstable();
                let at_last = t.reliability_milli(id(7), now);
                let mut prev = at_last;
                for gap in probes {
                    let cur = t.reliability_milli(id(7), now + SimDuration::from_micros(gap));
                    if at_last >= RELIABILITY_PRIOR_MILLI {
                        prop_assert!(cur <= prev && cur >= RELIABILITY_PRIOR_MILLI);
                    } else {
                        prop_assert!(cur >= prev && cur <= RELIABILITY_PRIOR_MILLI);
                    }
                    prev = cur;
                }
            }

            #[test]
            fn prop_same_evidence_same_score(seq in evidence()) {
                // Determinism: two tables fed the identical evidence
                // stream agree exactly — the property that makes scores
                // safe as sort keys and invariant across shard counts.
                let mut a = PeerScoreTable::new(H);
                let mut b = PeerScoreTable::new(H);
                let mut now = SimTime(0);
                for (success, gap) in seq {
                    now += SimDuration::from_micros(gap);
                    if success {
                        a.record_success(id(7), now);
                        b.record_success(id(7), now);
                    } else {
                        a.record_failure(id(7), now);
                        b.record_failure(id(7), now);
                    }
                }
                prop_assert_eq!(a.entries_sorted(), b.entries_sorted());
                prop_assert_eq!(
                    a.reliability_milli(id(7), now + H),
                    b.reliability_milli(id(7), now + H)
                );
            }
        }
    }
}
