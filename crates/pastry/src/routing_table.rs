//! The prefix routing table.
//!
//! A node's routing table is organized into ⌈log_2^b N⌉ levels with
//! 2^b − 1 entries each: the entries at level `n` refer to nodes whose
//! nodeId shares the present node's id in the first `n` digits but
//! differs in digit `n`. Among the potentially many candidate nodes per
//! cell, Pastry keeps one that is *close to the present node according to
//! the proximity metric* — the source of its locality properties.

use past_id::{Digits, NodeId};

use crate::leaf_set::NodeEntry;

/// One routing-table cell: a known node plus its measured proximity.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RouteCell {
    /// The referenced node.
    pub entry: NodeEntry,
    /// Proximity of that node to the table's owner (smaller = closer).
    pub proximity: f64,
}

/// The routing table of one node.
///
/// Cells live in one contiguous row-major allocation: `consider` runs on
/// every received message, and a vec-of-vecs costs an extra pointer chase
/// (and a cache miss) per access on that path.
#[derive(Clone, Debug)]
pub struct RoutingTable {
    own: NodeId,
    b: u32,
    cols: usize,
    cells: Vec<Option<RouteCell>>,
}

impl RoutingTable {
    /// Creates an empty table for a node with identifier `own` and digit
    /// width `b`.
    pub fn new(own: NodeId, b: u32) -> Self {
        Digits::check_base(b);
        let row_count = NodeId::digit_count(b) as usize;
        let cols = Digits::radix(b) as usize;
        RoutingTable {
            own,
            b,
            cols,
            cells: vec![None; row_count * cols],
        }
    }

    /// The owner's identifier.
    pub fn own_id(&self) -> NodeId {
        self.own
    }

    /// Digit width.
    pub fn b(&self) -> u32 {
        self.b
    }

    /// Number of rows (levels).
    pub fn row_count(&self) -> usize {
        self.cells.len() / self.cols
    }

    /// Returns the cell that would route toward `key` from this node:
    /// row = length of the common prefix of `own` and `key`, column =
    /// `key`'s digit at that position. `None` if `key == own`.
    pub fn cell_for(&self, key: NodeId) -> Option<&Option<RouteCell>> {
        if key == self.own {
            return None;
        }
        let row = self.own.shared_prefix_digits(key, self.b) as usize;
        let col = key.digit(row as u32, self.b) as usize;
        Some(&self.cells[row * self.cols + col])
    }

    /// Looks up the entry at (row, col).
    pub fn get(&self, row: usize, col: usize) -> Option<&RouteCell> {
        assert!(col < self.cols, "column {col} out of range");
        self.cells[row * self.cols + col].as_ref()
    }

    /// Considers `candidate` for inclusion. It is placed in the cell
    /// determined by its id; an existing occupant is replaced only if the
    /// candidate is strictly closer by proximity. Returns `true` if the
    /// table changed.
    pub fn consider(&mut self, candidate: NodeEntry, proximity: f64) -> bool {
        if candidate.id == self.own {
            return false;
        }
        let row = self.own.shared_prefix_digits(candidate.id, self.b) as usize;
        let col = candidate.id.digit(row as u32, self.b) as usize;
        let cell = &mut self.cells[row * self.cols + col];
        match cell {
            None => {
                *cell = Some(RouteCell {
                    entry: candidate,
                    proximity,
                });
                true
            }
            Some(existing) => {
                if existing.entry.id == candidate.id {
                    // Refresh the address/proximity of a known node.
                    if existing.entry.addr != candidate.addr || existing.proximity != proximity {
                        existing.entry = candidate;
                        existing.proximity = proximity;
                        return true;
                    }
                    false
                } else if proximity < existing.proximity {
                    *cell = Some(RouteCell {
                        entry: candidate,
                        proximity,
                    });
                    true
                } else {
                    false
                }
            }
        }
    }

    /// Removes a node (after it is presumed failed). Returns `true` if an
    /// entry was removed.
    pub fn remove(&mut self, id: NodeId) -> bool {
        if id == self.own {
            return false;
        }
        let row = self.own.shared_prefix_digits(id, self.b) as usize;
        let col = id.digit(row as u32, self.b) as usize;
        let cell = &mut self.cells[row * self.cols + col];
        if matches!(cell, Some(c) if c.entry.id == id) {
            *cell = None;
            true
        } else {
            false
        }
    }

    /// Returns row `n` of the table (cloned cells) — sent to joining
    /// nodes, which initialize row `i` from the `i`-th node on the join
    /// route.
    pub fn row(&self, n: usize) -> Vec<Option<RouteCell>> {
        self.cells[n * self.cols..(n + 1) * self.cols].to_vec()
    }

    /// Iterates over all populated entries.
    pub fn entries(&self) -> impl Iterator<Item = &RouteCell> {
        self.cells.iter().filter_map(|c| c.as_ref())
    }

    /// Number of populated cells.
    pub fn len(&self) -> usize {
        self.entries().count()
    }

    /// Returns `true` if no cell is populated.
    pub fn is_empty(&self) -> bool {
        self.entries().next().is_none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use past_net::Addr;
    use proptest::prelude::*;

    fn entry(v: u128) -> NodeEntry {
        NodeEntry::new(NodeId::from_u128(v), Addr((v & 0xffff) as u32))
    }

    fn own() -> NodeId {
        NodeId::from_u128(0x1023_3102 << 96)
    }

    #[test]
    fn consider_places_by_prefix() {
        let mut rt = RoutingTable::new(own(), 4);
        // Shares no prefix: digit 0 differs (own digit 0 = 1; candidate = 0xf...).
        let far = entry(0xf000_0000 << 96);
        assert!(rt.consider(far, 1.0));
        assert_eq!(rt.get(0, 0xf).unwrap().entry, far);
        // Shares 3 hex digits "102": row 3, col = 0.
        let near = entry(0x1020_0000 << 96);
        assert!(rt.consider(near, 2.0));
        assert_eq!(rt.get(3, 0).unwrap().entry, near);
    }

    #[test]
    fn closer_candidate_replaces() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = entry(0xf000_0000 << 96);
        let b = entry(0xf111_0000 << 96);
        rt.consider(a, 5.0);
        assert!(!rt.consider(b, 5.0), "not strictly closer");
        assert_eq!(rt.get(0, 0xf).unwrap().entry, a);
        assert!(rt.consider(b, 1.0));
        assert_eq!(rt.get(0, 0xf).unwrap().entry, b);
    }

    #[test]
    fn refresh_same_node() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = entry(0xf000_0000 << 96);
        rt.consider(a, 5.0);
        // Same id, new proximity: refreshed in place.
        assert!(rt.consider(a, 2.0));
        assert_eq!(rt.get(0, 0xf).unwrap().proximity, 2.0);
        assert!(!rt.consider(a, 2.0), "no-op refresh reports no change");
    }

    #[test]
    fn own_id_never_inserted() {
        let mut rt = RoutingTable::new(own(), 4);
        assert!(!rt.consider(NodeEntry::new(own(), Addr(1)), 0.0));
        assert!(rt.is_empty());
    }

    #[test]
    fn cell_for_routes_by_shared_prefix() {
        let mut rt = RoutingTable::new(own(), 4);
        let target = NodeId::from_u128(0x1028_0000 << 96);
        // Routing toward `target` consults row 3 (shared "102"), col 8.
        let hop = entry(0x1028_9999 << 96);
        rt.consider(hop, 1.0);
        let cell = rt.cell_for(target).unwrap();
        assert_eq!(cell.as_ref().unwrap().entry, hop);
        assert!(rt.cell_for(own()).is_none());
    }

    #[test]
    fn remove_only_matching_id() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = entry(0xf000_0000 << 96);
        rt.consider(a, 1.0);
        // Removing a different node that maps to the same cell is a no-op.
        assert!(!rt.remove(NodeId::from_u128(0xf111_0000 << 96)));
        assert!(rt.remove(a.id));
        assert!(rt.get(0, 0xf).is_none());
    }

    #[test]
    fn row_extraction() {
        let mut rt = RoutingTable::new(own(), 4);
        let a = entry(0xf000_0000 << 96);
        rt.consider(a, 1.0);
        let row0 = rt.row(0);
        assert_eq!(row0.len(), 16);
        assert_eq!(row0[0xf].as_ref().unwrap().entry, a);
        assert!(row0[0].is_none());
    }

    #[test]
    fn table_dimensions_match_paper() {
        // (2^b − 1) * ceil(log_2^b N) entries max; with b=4 and 128-bit
        // ids there are 32 rows of 16 columns (one column per row is the
        // node's own digit and stays empty).
        let rt = RoutingTable::new(own(), 4);
        assert_eq!(rt.row_count(), 32);
        assert_eq!(rt.row(0).len(), 16);
    }

    proptest! {
        #[test]
        fn prop_entry_shares_exactly_row_digits(ids: Vec<u128>) {
            let mut rt = RoutingTable::new(own(), 4);
            for v in ids {
                rt.consider(entry(v), 1.0);
            }
            for r in 0..rt.row_count() {
                for (c, cell) in rt.row(r).iter().enumerate() {
                    if let Some(cell) = cell {
                        let shared = rt.own.shared_prefix_digits(cell.entry.id, 4) as usize;
                        prop_assert_eq!(shared, r);
                        prop_assert_eq!(cell.entry.id.digit(r as u32, 4) as usize, c);
                    }
                }
            }
        }

        #[test]
        fn prop_consider_keeps_closest(v1: u128, suffix: u128, p1: f64, p2: f64) {
            prop_assume!(p1.is_finite() && p2.is_finite());
            let o = own();
            let e1 = entry(v1);
            prop_assume!(e1.id != o);
            // Derive a second id in the same cell: keep the digits up to and
            // including the first digit differing from `own`, randomize the
            // rest.
            let row = o.shared_prefix_digits(e1.id, 4);
            let keep_bits = (row + 1) * 4;
            let mask = if keep_bits >= 128 { u128::MAX } else { !(u128::MAX >> keep_bits) };
            let v2 = (v1 & mask) | (suffix & !mask);
            let e2 = entry(v2);
            prop_assume!(e1.id != e2.id);
            let mut rt = RoutingTable::new(o, 4);
            rt.consider(e1, p1);
            rt.consider(e2, p2);
            let row = o.shared_prefix_digits(e1.id, 4) as usize;
            let col = e1.id.digit(row as u32, 4) as usize;
            let kept = rt.get(row, col).unwrap();
            if p2 < p1 {
                prop_assert_eq!(kept.entry, e2);
            } else {
                prop_assert_eq!(kept.entry, e1);
            }
        }
    }
}
