//! Pastry: the peer-to-peer routing substrate PAST is layered on
//! (Rowstron & Druschel, Middleware 2001; summarized in §2.1 of the PAST
//! paper).
//!
//! Given a 128-bit key, Pastry routes a message to the live node whose
//! nodeId is numerically closest to the key in under ⌈log_2^b N⌉ steps
//! under normal operation. Each node maintains three structures:
//!
//! - a [`RoutingTable`] of (2^b − 1) × ⌈log_2^b N⌉ prefix-matched entries
//!   chosen for network proximity,
//! - a [`LeafSet`] of the l numerically closest nodes (routing anchor and
//!   PAST's replica neighborhood), and
//! - a [`NeighborhoodSet`] of the l proximally closest nodes (join-time
//!   locality seeding).
//!
//! [`PastryNode`] drives these over the `past-net` simulator: node join,
//! keep-alive failure detection, leaf-set repair, randomized routing, and
//! hosting of an [`Application`] (PAST) with per-hop interception.

mod config;
mod leaf_set;
mod neighborhood;
mod node;
mod peer_score;
mod routing_table;
mod snapshot;
mod state;

pub use config::PastryConfig;
pub use leaf_set::{LeafSet, NodeEntry};
pub use neighborhood::{Neighbor, NeighborhoodSet};
pub use node::{AppCtx, Application, Body, Envelope, PastryNode};
pub use peer_score::{PeerScore, PeerScoreTable, RELIABILITY_PRIOR_MILLI};
pub use routing_table::{RouteCell, RoutingTable};
pub use snapshot::{NodeSnapshot, SnapshotCell, SnapshotError, SnapshotPeer};
pub use state::{HopClass, LeafChange, NextHop, PastryState};
