//! End-to-end overlay tests: sequential joins over the emulated network,
//! routing correctness, hop counts, locality, failure recovery.

use past_id::NodeId;
use past_net::{Addr, EuclideanTopology, SimDuration, Simulator};
use past_pastry::{AppCtx, Application, NodeEntry, PastryConfig, PastryNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Minimal application: records deliveries as upcalls.
struct Recorder;

#[derive(Clone, Debug)]
struct Payload {
    tag: u64,
}

#[derive(Debug)]
struct Delivery {
    #[allow(dead_code)]
    key: NodeId,
    at: NodeId,
    hops: u32,
    tag: u64,
}

impl Application for Recorder {
    type Msg = Payload;
    type Upcall = Delivery;

    fn deliver(
        &mut self,
        ctx: &mut AppCtx<'_, '_, Payload, Delivery>,
        key: NodeId,
        msg: Payload,
        hops: u32,
        _source: NodeEntry,
    ) {
        let at = ctx.own().id;
        ctx.emit(Delivery {
            key,
            at,
            hops,
            tag: msg.tag,
        });
    }

    fn on_app_message(
        &mut self,
        _ctx: &mut AppCtx<'_, '_, Payload, Delivery>,
        _from: NodeEntry,
        _msg: Payload,
    ) {
    }
}

fn config() -> PastryConfig {
    PastryConfig {
        leaf_set_size: 16,
        neighborhood_size: 16,
        // Static-network tests disable keep-alives so the queue drains.
        keep_alive_period: SimDuration::ZERO,
        ..Default::default()
    }
}

/// Builds an overlay of `n` nodes with sequential joins; returns the
/// simulator and the sorted list of (id, addr).
fn build_overlay(
    n: usize,
    seed: u64,
    cfg: &PastryConfig,
) -> (Simulator<PastryNode<Recorder>>, Vec<NodeEntry>) {
    let mut seeder = StdRng::seed_from_u64(seed);
    let topo = EuclideanTopology::random(n, &mut seeder);
    let mut sim: Simulator<PastryNode<Recorder>> = Simulator::new(Box::new(topo), seed ^ 0xabcd);
    let mut entries: Vec<NodeEntry> = Vec::new();
    for i in 0..n {
        let id = NodeId::random(&mut seeder);
        let addr = Addr(i as u32);
        let entry = NodeEntry::new(id, addr);
        let bootstrap = if i == 0 {
            None
        } else {
            // Bootstrap from any existing node (index chosen pseudo-randomly).
            Some(Addr(seeder.gen_range(0..i) as u32))
        };
        sim.add_node(
            addr,
            PastryNode::new(cfg.clone(), entry, Recorder, bootstrap),
        );
        // Let the join complete before the next node arrives. With
        // keep-alives enabled the queue never drains, so bound the run.
        if cfg.keep_alive_period.micros() == 0 {
            sim.run_until_idle();
        } else {
            sim.run_for(SimDuration::from_secs(1));
        }
        entries.push(entry);
    }
    entries.sort_by_key(|e| e.id);
    (sim, entries)
}

/// The node whose id is numerically closest to `key`, ground truth.
fn ground_truth_closest(entries: &[NodeEntry], key: NodeId) -> NodeEntry {
    *entries
        .iter()
        .min_by(|a, b| {
            a.id.ring_distance(key)
                .cmp(&b.id.ring_distance(key))
                .then(a.id.cmp(&b.id))
        })
        .expect("non-empty overlay")
}

#[test]
fn all_nodes_join() {
    let cfg = config();
    let (sim, entries) = build_overlay(60, 7, &cfg);
    for e in &entries {
        assert!(
            sim.node(e.addr).unwrap().is_joined(),
            "node {} failed to join",
            e.id
        );
    }
}

#[test]
fn routing_reaches_numerically_closest_node() {
    let cfg = config();
    let (mut sim, entries) = build_overlay(60, 11, &cfg);
    let mut rng = StdRng::seed_from_u64(99);
    for tag in 0..200u64 {
        let key = NodeId::random(&mut rng);
        let origin = entries[rng.gen_range(0..entries.len())];
        sim_route(&mut sim, origin.addr, key, tag);
        sim.run_until_idle();
        let truth = ground_truth_closest(&entries, key);
        let deliveries = sim.drain_upcalls();
        assert_eq!(deliveries.len(), 1, "exactly one delivery per route");
        let (_, _, d) = &deliveries[0];
        assert_eq!(d.tag, tag);
        assert_eq!(
            d.at, truth.id,
            "key {key} delivered at {} but closest is {}",
            d.at, truth.id
        );
    }
}

/// Issues a route from a node through the overlay (uses the internal
/// invoke hook to run inside the node's context).
fn sim_route(
    sim: &mut Simulator<PastryNode<Recorder>>,
    from: Addr,
    key: NodeId,
    tag: u64,
) {
    // PastryNode has no public "route" helper on purpose (applications
    // route via AppCtx); tests emulate an application-initiated route by
    // sending a Route envelope from the node to itself.
    sim.invoke(from, move |node, ctx| {
        let own = node.own();
        ctx.send(
            own.addr,
            past_pastry::Envelope {
                sender: own,
                body: past_pastry::Body::Route {
                    key,
                    hops: 0,
                    source: own,
                    msg: Payload { tag },
                },
            },
        );
    });
}

#[test]
fn hop_count_is_logarithmic() {
    let cfg = config();
    let n = 120;
    let (mut sim, entries) = build_overlay(n, 13, &cfg);
    let mut rng = StdRng::seed_from_u64(5);
    let mut total_hops = 0u64;
    let mut count = 0u64;
    for tag in 0..300u64 {
        let key = NodeId::random(&mut rng);
        let origin = entries[rng.gen_range(0..entries.len())];
        sim_route(&mut sim, origin.addr, key, tag);
        sim.run_until_idle();
        for (_, _, d) in sim.drain_upcalls() {
            total_hops += d.hops as u64;
            count += 1;
        }
    }
    assert_eq!(count, 300);
    let avg = total_hops as f64 / count as f64;
    // ceil(log_16 120) = 2; allow generous slack (plus the loopback-free
    // lower bound of 0).
    assert!(avg <= 3.0, "average hops {avg} too high for N={n}");
}

#[test]
fn routing_survives_node_failures() {
    let cfg = PastryConfig {
        leaf_set_size: 8,
        neighborhood_size: 8,
        keep_alive_period: SimDuration::from_secs(5),
        failure_timeout: SimDuration::from_secs(15),
        // Delivery despite *silent* failures needs per-hop lazy repair:
        // keep-alives only cover the leaf set, so a stale routing-table
        // entry pointing at a dead node would otherwise eat the message.
        per_hop_acks: true,
        ..Default::default()
    };
    let (mut sim, entries) = build_overlay(40, 17, &cfg);
    // Fail 5 nodes scattered around the ring. (Failing ⌈l/2⌉ *adjacent*
    // nodes would exceed Pastry's own delivery guarantee.)
    let mut rng = StdRng::seed_from_u64(3);
    let failed: Vec<NodeEntry> = [5usize, 13, 21, 29, 37]
        .iter()
        .map(|&i| entries[i])
        .collect();
    for f in &failed {
        sim.fail_node(f.addr);
    }
    // Let keep-alives detect the failures and repair leaf sets.
    sim.run_for(SimDuration::from_secs(120));
    sim.drain_upcalls();
    let live: Vec<NodeEntry> = entries
        .iter()
        .filter(|e| !failed.iter().any(|f| f.id == e.id))
        .copied()
        .collect();
    let mut delivered = 0;
    let total = 100;
    for tag in 0..total as u64 {
        let key = NodeId::random(&mut rng);
        let origin = live[rng.gen_range(0..live.len())];
        sim_route(&mut sim, origin.addr, key, tag);
        sim.run_for(SimDuration::from_secs(4));
        let ups = sim.drain_upcalls();
        for (_, _, d) in &ups {
            // Deliveries must land on live nodes that are the closest
            // *live* node to the key.
            let truth = ground_truth_closest(&live, key);
            assert_eq!(d.at, truth.id, "delivery landed on wrong live node");
        }
        delivered += ups.len();
    }
    assert!(
        delivered >= total * 95 / 100,
        "only {delivered}/{total} routes delivered after failures"
    );
}

#[test]
fn failed_node_recovers_and_rejoins_leaf_sets() {
    let cfg = PastryConfig {
        leaf_set_size: 8,
        neighborhood_size: 8,
        keep_alive_period: SimDuration::from_secs(5),
        failure_timeout: SimDuration::from_secs(15),
        ..Default::default()
    };
    let (mut sim, entries) = build_overlay(20, 23, &cfg);
    let victim = entries[5];
    sim.fail_node(victim.addr);
    sim.run_for(SimDuration::from_secs(60));
    // Victim removed from all leaf sets.
    for e in &entries {
        if e.id == victim.id {
            continue;
        }
        let node = sim.node(e.addr).unwrap();
        assert!(
            !node.state().leaf_set().contains(victim.id),
            "node {} still lists failed node",
            e.id
        );
    }
    sim.recover_node(victim.addr);
    sim.run_for(SimDuration::from_secs(60));
    // Victim should be back in the leaf sets of its ring neighbors.
    let idx = entries.iter().position(|e| e.id == victim.id).unwrap();
    let neighbor = entries[(idx + 1) % entries.len()];
    let node = sim.node(neighbor.addr).unwrap();
    assert!(
        node.state().leaf_set().contains(victim.id),
        "recovered node missing from ring neighbor's leaf set"
    );
}

#[test]
fn randomized_routing_still_delivers_correctly() {
    let cfg = PastryConfig {
        randomized_routing: true,
        best_hop_bias: 0.7,
        leaf_set_size: 16,
        neighborhood_size: 16,
        keep_alive_period: SimDuration::ZERO,
        ..Default::default()
    };
    let (mut sim, entries) = build_overlay(50, 31, &cfg);
    let mut rng = StdRng::seed_from_u64(77);
    for tag in 0..100u64 {
        let key = NodeId::random(&mut rng);
        let origin = entries[rng.gen_range(0..entries.len())];
        sim_route(&mut sim, origin.addr, key, tag);
        sim.run_until_idle();
        let truth = ground_truth_closest(&entries, key);
        let ups = sim.drain_upcalls();
        assert_eq!(ups.len(), 1);
        assert_eq!(ups[0].2.at, truth.id);
    }
}

#[test]
fn deterministic_overlay_construction() {
    let cfg = config();
    let (sim1, e1) = build_overlay(30, 41, &cfg);
    let (sim2, e2) = build_overlay(30, 41, &cfg);
    assert_eq!(e1, e2);
    for e in &e1 {
        let a = sim1.node(e.addr).unwrap().state().leaf_set().len();
        let b = sim2.node(e.addr).unwrap().state().leaf_set().len();
        assert_eq!(a, b);
    }
}
