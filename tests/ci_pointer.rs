//! Guard against the workspace's `cargo test -q` footgun.
//!
//! The root `Cargo.toml` carries both a `[workspace]` table and a
//! `[package]` (the `past` facade), so a bare `cargo test` at the
//! repository root builds **only the facade and these root tests** —
//! none of the per-crate suites under `crates/`. This test makes the
//! narrow run say so out loud, and pins the existence of the real gate
//! it points to (`scripts/ci.sh` runs the whole workspace offline and
//! refuses crates with zero tests).

use std::io::Write as _;
use std::path::Path;

#[test]
fn bare_cargo_test_points_at_the_full_gate() {
    // stderr bypasses libtest's output capture, so the pointer is
    // visible even under `cargo test -q`.
    let mut err = std::io::stderr().lock();
    let _ = writeln!(
        err,
        "note: `cargo test` at the repo root covers only the `past` facade; \
         run `scripts/ci.sh` (or `cargo test --workspace --offline`) for the full suite"
    );

    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let ci = root.join("scripts/ci.sh");
    assert!(ci.is_file(), "scripts/ci.sh is the advertised gate");
    #[cfg(unix)]
    {
        use std::os::unix::fs::PermissionsExt;
        let mode = ci.metadata().expect("stat scripts/ci.sh").permissions().mode();
        assert!(mode & 0o111 != 0, "scripts/ci.sh must be executable");
    }
    let body = std::fs::read_to_string(&ci).expect("read scripts/ci.sh");
    assert!(
        body.contains("--workspace"),
        "ci.sh must run the whole workspace, not the facade"
    );
    assert!(
        body.contains("zero-test"),
        "ci.sh must keep the zero-test guard this suite relies on"
    );
}
