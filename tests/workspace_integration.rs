//! Workspace-level integration tests: exercise the full stack through
//! the `past` facade — smartcard identities, the Pastry overlay, PAST
//! storage management, caching, quotas and erasure coding together.

use past::core::{PastConfig, PastEvent, PastNode, PastOverlayNode};
use past::crypto::{CardIssuer, Scheme};
use past::erasure::ReedSolomon;
use past::id::FileId;
use past::net::{Addr, EuclideanTopology, SimDuration, Simulator};
use past::pastry::{NodeEntry, PastryConfig, PastryNode};
use past::sim::{run_experiment, ExperimentConfig};
use past::store::CachePolicyKind;
use past::workload::WebTraceConfig;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Builds an overlay whose node identities come from issuer-signed
/// smartcards, verifying each certificate as the paper's security model
/// prescribes.
fn build_card_overlay(
    nodes: usize,
    seed: u64,
) -> (Simulator<PastOverlayNode>, Vec<NodeEntry>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let issuer = CardIssuer::new(Scheme::Keyed, &mut rng);
    let topology = EuclideanTopology::random(nodes, &mut rng);
    let mut sim: Simulator<PastOverlayNode> = Simulator::new(Box::new(topology), seed);
    let pastry_cfg = PastryConfig {
        leaf_set_size: 16,
        neighborhood_size: 16,
        keep_alive_period: SimDuration::ZERO,
        ..Default::default()
    };
    let past_cfg = PastConfig {
        verify_certificates: true,
        ..Default::default()
    };
    let mut entries = Vec::new();
    for i in 0..nodes {
        let card = issuer.issue_card(1 << 30, &mut rng);
        // Every node verifies its card against the issuer key before
        // joining — a forged nodeId can never enter the overlay.
        card.node_id_cert()
            .verify(&issuer.public())
            .expect("issuer-signed card");
        let id = card.node_id();
        let addr = Addr(i as u32);
        let entry = NodeEntry::new(id, addr);
        let app = PastNode::new(
            past_cfg.clone(),
            card.keypair().clone(),
            100 << 20,
            1 << 30,
        );
        let bootstrap = (i > 0).then(|| Addr(rng.gen_range(0..i) as u32));
        sim.add_node(addr, PastryNode::new(pastry_cfg.clone(), entry, app, bootstrap));
        sim.run_until_idle();
        entries.push(entry);
    }
    (sim, entries)
}

#[test]
fn smartcard_identities_insert_and_lookup_with_verification() {
    let (mut sim, _) = build_card_overlay(30, 401);
    // verify_certificates = true: every storage node checks the file
    // certificate signature, every receipt is verified by the client.
    sim.invoke(Addr(2), |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.insert(actx, "verified.doc", 64 << 10);
        });
    });
    sim.run_until_idle();
    let mut fid = None;
    for (_, _, e) in sim.drain_upcalls() {
        if let PastEvent::InsertDone {
            file_id, success, ..
        } = e
        {
            assert!(success, "verified insert failed");
            fid = Some(file_id);
        }
    }
    let fid = fid.expect("insert completed");
    sim.invoke(Addr(17), move |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.lookup(actx, fid);
        });
    });
    sim.run_until_idle();
    let found = sim.drain_upcalls().iter().any(|(_, _, e)| {
        matches!(e, PastEvent::LookupDone { found: true, .. })
    });
    assert!(found);
}

#[test]
fn quota_debits_and_refunds_across_the_stack() {
    let (mut sim, _) = build_card_overlay(25, 402);
    let k = 5u64;
    let size = 10_000u64;
    sim.invoke(Addr(1), move |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.insert(actx, "quota-file", size);
        });
    });
    sim.run_until_idle();
    let mut fid = None;
    for (_, _, e) in sim.drain_upcalls() {
        if let PastEvent::InsertDone { file_id, .. } = e {
            fid = Some(file_id);
        }
    }
    assert_eq!(
        sim.node(Addr(1)).unwrap().app().quota().used(),
        k * size,
        "insert debits size x k"
    );
    let fid = fid.unwrap();
    sim.invoke(Addr(1), move |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.reclaim(actx, fid);
        });
    });
    sim.run_until_idle();
    sim.drain_upcalls();
    assert_eq!(
        sim.node(Addr(1)).unwrap().app().quota().used(),
        0,
        "reclaim refunds the quota"
    );
}

#[test]
fn only_the_owner_can_reclaim() {
    let (mut sim, _) = build_card_overlay(25, 403);
    sim.invoke(Addr(1), |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.insert(actx, "mine.txt", 5_000);
        });
    });
    sim.run_until_idle();
    let mut fid = None;
    for (_, _, e) in sim.drain_upcalls() {
        if let PastEvent::InsertDone { file_id, .. } = e {
            fid = Some(file_id);
        }
    }
    let fid = fid.unwrap();
    // A different node (different smartcard) tries to reclaim.
    sim.invoke(Addr(9), move |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.reclaim(actx, fid);
        });
    });
    sim.run_until_idle();
    let rejected = sim
        .drain_upcalls()
        .iter()
        .any(|(_, _, e)| matches!(e, PastEvent::ReclaimDone { ok: false, .. }));
    assert!(rejected, "foreign reclaim must be rejected");
    // The file is still there.
    sim.invoke(Addr(12), move |node, ctx| {
        node.invoke_app(ctx, |app, actx| {
            app.lookup(actx, fid);
        });
    });
    sim.run_until_idle();
    let found = sim
        .drain_upcalls()
        .iter()
        .any(|(_, _, e)| matches!(e, PastEvent::LookupDone { found: true, .. }));
    assert!(found);
}

#[test]
fn end_to_end_experiment_reaches_high_utilization() {
    // A miniature version of the paper's headline result through the
    // public experiment API.
    let trace = WebTraceConfig::default()
        .with_unique_files(16_600) // ~830 files/node at 20 nodes
        .generate();
    let cfg = ExperimentConfig {
        nodes: 20,
        leaf_set_size: 16,
        ..Default::default()
    };
    let result = run_experiment(cfg, &trace);
    assert!(result.final_utilization() > 0.80);
    assert!(result.success_ratio() > 0.90);
}

#[test]
fn erasure_coded_fragments_survive_replica_level_losses() {
    // Store RS fragments as separate PAST files: even after losing m
    // fragment-files entirely, the original reconstructs.
    let (mut sim, _) = build_card_overlay(30, 405);
    let rs = ReedSolomon::new(4, 2);
    let original: Vec<u8> = (0..10_000u32).map(|i| (i % 251) as u8).collect();
    let shards = rs.encode_bytes(&original);
    let mut fragment_ids: Vec<FileId> = Vec::new();
    for (i, shard) in shards.iter().enumerate() {
        let name = format!("video.mp4.frag{i}");
        let size = shard.len() as u64;
        sim.invoke(Addr(3), move |node, ctx| {
            node.invoke_app(ctx, |app, actx| {
                app.insert(actx, &name, size);
            });
        });
        sim.run_until_idle();
        for (_, _, e) in sim.drain_upcalls() {
            if let PastEvent::InsertDone {
                file_id,
                success: true,
                ..
            } = e
            {
                fragment_ids.push(file_id);
            }
        }
    }
    assert_eq!(fragment_ids.len(), 6);
    // Model the loss of two whole fragments (e.g. all their replicas
    // reclaimed): reconstruct from the four that remain retrievable.
    let mut received: Vec<Option<Vec<u8>>> = shards.into_iter().map(Some).collect();
    received[1] = None;
    received[4] = None;
    let recovered = rs.decode_bytes(&mut received, original.len()).unwrap();
    assert_eq!(recovered, original);
}

#[test]
fn cache_policy_none_matches_store_accounting() {
    let trace = WebTraceConfig::default().with_unique_files(600).generate();
    let cfg = ExperimentConfig {
        nodes: 40,
        leaf_set_size: 16,
        cache_policy: CachePolicyKind::None,
        replay_lookups: true,
        ..Default::default()
    };
    let result = run_experiment(cfg, &trace);
    assert!(result.lookups.iter().all(|l| !l.cache_hit));
    assert!(result.lookups.iter().filter(|l| l.found).count() > 0);
}
